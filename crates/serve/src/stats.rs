//! Runtime counters, batch-size accounting, QoS per-level accounting, and
//! latency summaries.
//!
//! # Memory-ordering contract
//!
//! Every counter is an `AtomicU64` updated with `Relaxed` ordering: each
//! counter is individually monotonic and no update is ever lost, but a
//! [`RuntimeStats`] snapshot is **not** a single linearization point — it
//! may be torn *across* counters (e.g. observe a batch's `completed`
//! increment but not yet its histogram bucket). Derived quantities are
//! therefore computed saturating ([`RuntimeStats::batched`],
//! [`RuntimeStats::delta_since`]) so a torn read can never underflow.
//! Once the runtime is quiescent (all submitted requests resolved), a
//! snapshot is exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ae_obs::{AtomicHistogram, HistogramSnapshot, Ladder};

use crate::qos::ServiceLevel;

/// Interior counters shared between workers and submitters.
#[derive(Debug)]
pub(crate) struct StatsInner {
    completed: AtomicU64,
    inline_scored: AtomicU64,
    batches: AtomicU64,
    dropped: AtomicU64,
    errors: AtomicU64,
    level_completed: [AtomicU64; ServiceLevel::COUNT],
    level_misses: [AtomicU64; ServiceLevel::COUNT],
    level_shed: [AtomicU64; ServiceLevel::COUNT],
    demoted: AtomicU64,
    throttled: AtomicU64,
    degraded: AtomicU64,
    breaker_trips: AtomicU64,
    /// Lock-free batch-size distribution over [`Ladder::batch_sizes`]:
    /// bucket `i` counts worker batches of size `i + 1`; sizes beyond
    /// `max_batch` (after a config change) clamp into the last bucket.
    histogram: AtomicHistogram,
}

impl StatsInner {
    pub(crate) fn new(max_batch: usize) -> Self {
        Self {
            completed: AtomicU64::new(0),
            inline_scored: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            level_completed: std::array::from_fn(|_| AtomicU64::new(0)),
            level_misses: std::array::from_fn(|_| AtomicU64::new(0)),
            level_shed: std::array::from_fn(|_| AtomicU64::new(0)),
            demoted: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            histogram: AtomicHistogram::new(Ladder::batch_sizes(max_batch)),
        }
    }

    pub(crate) fn record_inline(&self) {
        self.inline_scored.fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, size: usize, failed: bool) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if failed {
            self.errors.fetch_add(size as u64, Ordering::Relaxed);
        } else {
            self.completed.fetch_add(size as u64, Ordering::Relaxed);
        }
        // Clamp before recording so the histogram's sum/mean/max agree
        // with its (clamped) buckets — same semantics as the ladder index.
        let cap = self.histogram.ladder().num_buckets();
        self.histogram.record(size.clamp(1, cap) as u64);
    }

    pub(crate) fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// One request fulfilled at `level`; `missed` marks a deadline miss.
    pub(crate) fn record_level_completed(&self, level: ServiceLevel, missed: bool) {
        self.level_completed[level.index()].fetch_add(1, Ordering::Relaxed);
        if missed {
            self.level_misses[level.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One queued request shed (admission eviction) at `level`.
    pub(crate) fn record_shed(&self, level: ServiceLevel) {
        self.level_shed[level.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// One over-rate request demoted to `BestEffort` by the tenant governor.
    pub(crate) fn record_demoted(&self) {
        self.demoted.fetch_add(1, Ordering::Relaxed);
    }

    /// One over-rate request rejected by the tenant governor.
    pub(crate) fn record_throttled(&self) {
        self.throttled.fetch_add(1, Ordering::Relaxed);
    }

    /// One request answered by the heuristic fallback (degraded mode).
    pub(crate) fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// The circuit breaker tripped open (threshold reached or a half-open
    /// probe failed).
    pub(crate) fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// The batch-size distribution as a mergeable [`HistogramSnapshot`]
    /// (for metric export; [`RuntimeStats::batch_size_histogram`] carries
    /// the same buckets as a plain vector).
    pub(crate) fn batch_histogram(&self) -> HistogramSnapshot {
        self.histogram.snapshot()
    }

    pub(crate) fn snapshot(&self) -> RuntimeStats {
        fn load(counters: &[AtomicU64; ServiceLevel::COUNT]) -> [u64; ServiceLevel::COUNT] {
            std::array::from_fn(|i| counters[i].load(Ordering::Relaxed))
        }
        let completed = load(&self.level_completed);
        let misses = load(&self.level_misses);
        let shed = load(&self.level_shed);
        RuntimeStats {
            completed: self.completed.load(Ordering::Relaxed),
            inline_scored: self.inline_scored.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            levels: std::array::from_fn(|i| LevelStats {
                completed: completed[i],
                deadline_misses: misses[i],
                shed: shed[i],
            }),
            demoted: self.demoted.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            batch_size_histogram: self.histogram.snapshot().bucket_counts().to_vec(),
        }
    }
}

/// Per-service-level QoS counters, indexed by [`ServiceLevel::index`] in
/// [`RuntimeStats::levels`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Requests fulfilled at this level (after any demotion).
    pub completed: u64,
    /// Fulfilled requests that finished past their deadline.
    pub deadline_misses: u64,
    /// Queued requests evicted (shed) at this level under saturation.
    pub shed: u64,
}

impl LevelStats {
    /// Deadline-miss rate over this level's completions (0.0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.deadline_misses as f64 / self.completed as f64
    }
}

/// A point-in-time snapshot of the runtime's counters.
///
/// See the [module docs](crate::stats) for the memory-ordering contract:
/// every field is individually monotonic, but a snapshot taken while
/// requests are in flight may be torn across fields. All derived
/// quantities on this type are saturating so that torn reads degrade to
/// slight undercounts, never to underflow.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Successfully scored requests (inline + batched).
    pub completed: u64,
    /// Requests served on the submitting thread via the idle shortcut.
    pub inline_scored: u64,
    /// Worker batches processed.
    pub batches: u64,
    /// Requests rejected by `try_score` because the queue was full.
    pub dropped: u64,
    /// Requests that completed with an error.
    pub errors: u64,
    /// Per-service-level completions, deadline misses, and sheds, indexed
    /// by [`ServiceLevel::index`].
    pub levels: [LevelStats; ServiceLevel::COUNT],
    /// Requests demoted to `BestEffort` by the tenant governor.
    pub demoted: u64,
    /// Requests rejected outright by the tenant governor.
    pub throttled: u64,
    /// Requests answered by the heuristic fallback while the circuit
    /// breaker bypassed the model path (degraded mode). These also count
    /// in `completed` — degraded requests still succeed.
    pub degraded: u64,
    /// Times the circuit breaker tripped open (including failed half-open
    /// probes).
    pub breaker_trips: u64,
    /// `batch_size_histogram[i]` = number of worker batches of size `i + 1`.
    pub batch_size_histogram: Vec<u64>,
}

impl RuntimeStats {
    /// Requests that went through worker batches (completed minus inline).
    pub fn batched(&self) -> u64 {
        self.completed.saturating_sub(self.inline_scored)
    }

    /// The per-level counters of one service level.
    pub fn level(&self, level: ServiceLevel) -> &LevelStats {
        &self.levels[level.index()]
    }

    /// Queued requests shed across all levels.
    pub fn shed(&self) -> u64 {
        self.levels.iter().map(|l| l.shed).sum()
    }

    /// Counter-wise difference against an earlier snapshot of the same
    /// runtime — what happened *since* `before`.
    ///
    /// Covers **every** field, including the per-level QoS arrays and the
    /// batch-size histogram, and subtracts saturating: because snapshots
    /// are taken without a global lock (see the module docs), a later
    /// snapshot can transiently show a *lower* value on one counter than
    /// an interleaved earlier one; such races clamp to 0 instead of
    /// wrapping. Histogram buckets beyond `before`'s length (none in
    /// practice) are kept as-is.
    pub fn delta_since(&self, before: &RuntimeStats) -> RuntimeStats {
        let mut delta = self.clone();
        delta.completed = delta.completed.saturating_sub(before.completed);
        delta.inline_scored = delta.inline_scored.saturating_sub(before.inline_scored);
        delta.batches = delta.batches.saturating_sub(before.batches);
        delta.dropped = delta.dropped.saturating_sub(before.dropped);
        delta.errors = delta.errors.saturating_sub(before.errors);
        delta.demoted = delta.demoted.saturating_sub(before.demoted);
        delta.throttled = delta.throttled.saturating_sub(before.throttled);
        delta.degraded = delta.degraded.saturating_sub(before.degraded);
        delta.breaker_trips = delta.breaker_trips.saturating_sub(before.breaker_trips);
        for (level, earlier) in delta.levels.iter_mut().zip(&before.levels) {
            level.completed = level.completed.saturating_sub(earlier.completed);
            level.deadline_misses = level
                .deadline_misses
                .saturating_sub(earlier.deadline_misses);
            level.shed = level.shed.saturating_sub(earlier.shed);
        }
        for (bucket, earlier) in delta
            .batch_size_histogram
            .iter_mut()
            .zip(&before.batch_size_histogram)
        {
            *bucket = bucket.saturating_sub(*earlier);
        }
        delta
    }

    /// Adds another runtime's counters into this snapshot field-by-field
    /// — the aggregation primitive behind
    /// [`FleetStats`](crate::fleet::FleetStats). Every counter is summed,
    /// including the per-level QoS arrays and `breaker_trips` (breakers
    /// are per-runtime, so a fleet total is the sum of independent trip
    /// counts); batch-size histograms are added bucket-wise, extending
    /// this histogram when `other`'s is longer (shards may differ in
    /// `max_batch`).
    pub fn merge_from(&mut self, other: &RuntimeStats) {
        self.completed += other.completed;
        self.inline_scored += other.inline_scored;
        self.batches += other.batches;
        self.dropped += other.dropped;
        self.errors += other.errors;
        self.demoted += other.demoted;
        self.throttled += other.throttled;
        self.degraded += other.degraded;
        self.breaker_trips += other.breaker_trips;
        for (level, addend) in self.levels.iter_mut().zip(&other.levels) {
            level.completed += addend.completed;
            level.deadline_misses += addend.deadline_misses;
            level.shed += addend.shed;
        }
        if self.batch_size_histogram.len() < other.batch_size_histogram.len() {
            self.batch_size_histogram
                .resize(other.batch_size_histogram.len(), 0);
        }
        for (bucket, addend) in self
            .batch_size_histogram
            .iter_mut()
            .zip(&other.batch_size_histogram)
        {
            *bucket += addend;
        }
    }

    /// Mean worker-batch size (0.0 when no batches ran).
    pub fn mean_batch_size(&self) -> f64 {
        let batches: u64 = self.batch_size_histogram.iter().sum();
        if batches == 0 {
            return 0.0;
        }
        let requests: u64 = self
            .batch_size_histogram
            .iter()
            .enumerate()
            .map(|(i, &count)| (i as u64 + 1) * count)
            .sum();
        requests as f64 / batches as f64
    }
}

/// The coherent point-in-time view of a runtime's counters, as returned
/// by [`crate::ScoringRuntime::stats`]. Alias of [`RuntimeStats`]; see
/// that type (and the [module docs](crate::stats)) for the consistency
/// contract.
pub type StatsSnapshot = RuntimeStats;

/// Client-side latency collector: each load-generator thread records its
/// per-request latencies, then recorders are merged and summarized into
/// p50/p99 for the serving benchmark.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_ns: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty recorder with room for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            samples_ns: Vec::with_capacity(n),
        }
    }

    /// Records one request latency.
    pub fn record(&mut self, latency: Duration) {
        self.samples_ns.push(latency.as_nanos() as u64);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// Moves another recorder's samples into this one.
    pub fn merge(&mut self, other: LatencyRecorder) {
        self.samples_ns.extend(other.samples_ns);
    }

    /// Sorts the samples and computes count/mean/p50/p99/max.
    pub fn summarize(mut self) -> LatencySummary {
        if self.samples_ns.is_empty() {
            return LatencySummary::default();
        }
        self.samples_ns.sort_unstable();
        let count = self.samples_ns.len();
        let total: u128 = self.samples_ns.iter().map(|&ns| ns as u128).sum();
        let at = |p: f64| {
            // Nearest-rank percentile.
            let rank = ((p * count as f64).ceil() as usize).clamp(1, count);
            Duration::from_nanos(self.samples_ns[rank - 1])
        };
        LatencySummary {
            count,
            mean: Duration::from_nanos((total / count as u128) as u64),
            p50: at(0.50),
            p99: at(0.99),
            max: Duration::from_nanos(*self.samples_ns.last().expect("non-empty")),
        }
    }
}

/// Percentile summary of a set of request latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (nearest-rank).
    pub p50: Duration,
    /// 99th percentile (nearest-rank).
    pub p99: Duration,
    /// Worst observed latency.
    pub max: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_and_mean_batch_size() {
        let inner = StatsInner::new(4);
        inner.record_batch(1, false);
        inner.record_batch(3, false);
        inner.record_batch(3, false);
        inner.record_batch(9, false); // clamped into the last bucket
        let snap = inner.snapshot();
        assert_eq!(snap.batch_size_histogram, vec![1, 0, 2, 1]);
        assert_eq!(snap.completed, 16);
        assert_eq!(snap.batches, 4);
        // Mean over the histogram uses clamped sizes: (1 + 3 + 3 + 4) / 4.
        assert!((snap.mean_batch_size() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn inline_and_batched_accounting() {
        let inner = StatsInner::new(8);
        inner.record_inline();
        inner.record_inline();
        inner.record_batch(5, false);
        inner.record_batch(2, true);
        inner.record_error();
        inner.record_dropped();
        let snap = inner.snapshot();
        assert_eq!(snap.completed, 7);
        assert_eq!(snap.inline_scored, 2);
        assert_eq!(snap.batched(), 5);
        assert_eq!(snap.errors, 3);
        assert_eq!(snap.dropped, 1);
    }

    #[test]
    fn latency_summary_percentiles() {
        let mut rec = LatencyRecorder::with_capacity(100);
        for i in 1..=100u64 {
            rec.record(Duration::from_micros(i));
        }
        let mut other = LatencyRecorder::new();
        other.record(Duration::from_micros(1000));
        rec.merge(other);
        assert_eq!(rec.len(), 101);
        let summary = rec.summarize();
        assert_eq!(summary.count, 101);
        assert_eq!(summary.p50, Duration::from_micros(51));
        assert_eq!(summary.p99, Duration::from_micros(100));
        assert_eq!(summary.max, Duration::from_micros(1000));
        assert!(summary.mean >= Duration::from_micros(50));
    }

    #[test]
    fn level_accounting_and_delta() {
        let inner = StatsInner::new(4);
        inner.record_inline();
        inner.record_level_completed(ServiceLevel::Interactive, false);
        inner.record_level_completed(ServiceLevel::Interactive, true);
        inner.record_level_completed(ServiceLevel::BestEffort, false);
        inner.record_shed(ServiceLevel::BestEffort);
        inner.record_demoted();
        inner.record_throttled();
        let before = inner.snapshot();
        assert_eq!(before.level(ServiceLevel::Interactive).completed, 2);
        assert_eq!(before.level(ServiceLevel::Interactive).deadline_misses, 1);
        assert!((before.level(ServiceLevel::Interactive).miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(before.level(ServiceLevel::BestEffort).shed, 1);
        assert_eq!(before.shed(), 1);
        assert_eq!(before.demoted, 1);
        assert_eq!(before.throttled, 1);

        inner.record_level_completed(ServiceLevel::Standard, true);
        inner.record_shed(ServiceLevel::BestEffort);
        inner.record_batch(2, false);
        let delta = inner.snapshot().delta_since(&before);
        assert_eq!(delta.level(ServiceLevel::Standard).completed, 1);
        assert_eq!(delta.level(ServiceLevel::Standard).deadline_misses, 1);
        assert_eq!(delta.level(ServiceLevel::Interactive).completed, 0);
        assert_eq!(delta.shed(), 1);
        assert_eq!(delta.demoted, 0);
        assert_eq!(delta.completed, 2);
        assert_eq!(delta.batch_size_histogram, vec![0, 1, 0, 0]);
    }

    #[test]
    fn merge_from_sums_every_field() {
        let a = StatsInner::new(4);
        a.record_inline();
        a.record_batch(3, false);
        a.record_level_completed(ServiceLevel::Interactive, true);
        a.record_level_completed(ServiceLevel::Standard, false);
        a.record_shed(ServiceLevel::BestEffort);
        a.record_demoted();
        a.record_breaker_trip();
        let b = StatsInner::new(8); // longer histogram than `a`
        b.record_batch(6, false);
        b.record_batch(2, true);
        b.record_error();
        b.record_dropped();
        b.record_throttled();
        b.record_degraded();
        b.record_level_completed(ServiceLevel::Interactive, false);
        let mut merged = a.snapshot();
        merged.merge_from(&b.snapshot());
        assert_eq!(merged.completed, 1 + 3 + 6);
        assert_eq!(merged.inline_scored, 1);
        assert_eq!(merged.batches, 3);
        assert_eq!(merged.errors, 2 + 1);
        assert_eq!(merged.dropped, 1);
        assert_eq!(merged.demoted, 1);
        assert_eq!(merged.throttled, 1);
        assert_eq!(merged.degraded, 1);
        assert_eq!(merged.breaker_trips, 1);
        assert_eq!(merged.level(ServiceLevel::Interactive).completed, 2);
        assert_eq!(merged.level(ServiceLevel::Interactive).deadline_misses, 1);
        assert_eq!(merged.level(ServiceLevel::Standard).completed, 1);
        assert_eq!(merged.level(ServiceLevel::BestEffort).shed, 1);
        // Bucket-wise sum over the longer (8-bucket) shape: a recorded one
        // 3-batch, b recorded one 6-batch and one 2-batch.
        assert_eq!(merged.batch_size_histogram, vec![0, 1, 1, 0, 0, 1, 0, 0]);
        // Merging is order-insensitive on the counter totals.
        let mut flipped = b.snapshot();
        flipped.merge_from(&a.snapshot());
        assert_eq!(flipped.completed, merged.completed);
        assert_eq!(flipped.batch_size_histogram, merged.batch_size_histogram);
    }

    #[test]
    fn delta_saturates_instead_of_wrapping() {
        let inner = StatsInner::new(2);
        inner.record_inline();
        let later = inner.snapshot();
        inner.record_inline();
        let earlier = inner.snapshot();
        // Model of a torn read: the "later" snapshot observed fewer
        // increments than the baseline it is diffed against.
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.completed, 0);
        assert_eq!(delta.inline_scored, 0);
    }

    #[test]
    fn batch_histogram_snapshot_matches_vec() {
        let inner = StatsInner::new(4);
        inner.record_batch(2, false);
        inner.record_batch(9, false); // clamped into the last bucket
        let hist = inner.batch_histogram();
        let stats = inner.snapshot();
        assert_eq!(hist.bucket_counts(), stats.batch_size_histogram.as_slice());
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.max(), 4);
    }

    #[test]
    fn empty_recorder_summarizes_to_zero() {
        let summary = LatencyRecorder::new().summarize();
        assert_eq!(summary.count, 0);
        assert_eq!(summary.p99, Duration::ZERO);
    }
}
