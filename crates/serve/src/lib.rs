//! # ae-serve — concurrent batched scoring runtime for the serving path
//!
//! The paper's AutoExecutor extension scores one plan at a time inside the
//! optimizer of a single Spark session. A serving deployment — the
//! ROADMAP's "heavy traffic from millions of users" — instead sees many
//! concurrent scoring requests against a shared model. This crate provides
//! the runtime that sits between the two:
//!
//! * **[`ScoringRuntime`]** accepts scoring requests from any number of
//!   threads, places them on a bounded queue (backpressure), and has worker
//!   threads drain the queue in **micro-batches**: whatever is queued — up
//!   to `max_batch`, topped up for at most `batch_window` — is featurized
//!   into one flat [`ae_ml::matrix::FeatureMatrix`] and pushed through the
//!   batched forest/selection path
//!   ([`autoexecutor::scoring::score_feature_batch`]).
//! * When the runtime is **idle** the submitting thread scores **inline**
//!   instead of paying a queue round-trip, so single-query latency never
//!   regresses relative to the sequential rule.
//! * The model comes from the sharded, read-mostly
//!   [`autoexecutor::registry::ModelRegistry`] as an `Arc` handle; the
//!   decoded model is cached per runtime and re-resolved by pointer
//!   identity, so re-registering a model (RCU-style swap) is picked up by
//!   the next batch without ever blocking scoring.
//! * In **deterministic mode** ([`RuntimeConfig::deterministic`]: one
//!   worker, FIFO drain, no batch window, no inline shortcut) the runtime
//!   produces bit-identical [`autoexecutor::optimizer::ResourceRequest`]s
//!   to the sequential `AutoExecutorRule`, because both funnel through the
//!   same [`autoexecutor::scoring`] entry points. The regression test in
//!   `tests/determinism.rs` pins this.
//!
//! Admission control, SLA tiers, and multi-tenant pricing (PixelsDB-style
//! per-query service levels) are future ROADMAP work that will hang off
//! this runtime.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod runtime;
pub mod stats;

pub use config::RuntimeConfig;
pub use runtime::ScoringRuntime;
pub use stats::{LatencyRecorder, LatencySummary, RuntimeStats};

/// Errors surfaced by the serving runtime.
///
/// Scoring and model failures carry rendered messages (not the source
/// errors) because one failure may have to be delivered to every request of
/// a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `try_score` found the admission queue full (the request was counted
    /// as dropped; the caller may retry, shed load, or fall back).
    Saturated,
    /// The runtime is shutting down; the request was not scored.
    ShutDown,
    /// The model could not be fetched from the registry or decoded.
    Model(String),
    /// Scoring itself failed (e.g. an empty candidate range).
    Scoring(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Saturated => write!(f, "scoring queue is saturated"),
            ServeError::ShutDown => write!(f, "scoring runtime is shut down"),
            ServeError::Model(s) => write!(f, "model error: {s}"),
            ServeError::Scoring(s) => write!(f, "scoring error: {s}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ServeError>;
