//! # ae-serve — concurrent batched scoring runtime for the serving path
//!
//! The paper's AutoExecutor extension scores one plan at a time inside the
//! optimizer of a single Spark session. A serving deployment — the
//! ROADMAP's "heavy traffic from millions of users" — instead sees many
//! concurrent scoring requests against a shared model. This crate provides
//! the runtime that sits between the two:
//!
//! * **[`ScoringRuntime`]** accepts scoring requests from any number of
//!   threads, places them on a bounded queue (backpressure), and has worker
//!   threads drain the queue in **micro-batches**: whatever is queued — up
//!   to `max_batch`, topped up for at most `batch_window` — is featurized
//!   into one flat [`ae_ml::matrix::FeatureMatrix`] and pushed through the
//!   batched forest/selection path
//!   ([`autoexecutor::scoring::score_feature_batch`]).
//! * When the runtime is **idle** the submitting thread scores **inline**
//!   instead of paying a queue round-trip, so single-query latency never
//!   regresses relative to the sequential rule.
//! * The model comes from the sharded, read-mostly
//!   [`autoexecutor::registry::ModelRegistry`] as an `Arc` handle; the
//!   decoded model is cached per runtime and re-resolved by pointer
//!   identity, so re-registering a model (RCU-style swap) is picked up by
//!   the next batch without ever blocking scoring.
//! * In **deterministic mode** ([`RuntimeConfig::deterministic`]: one
//!   worker, FIFO drain, no batch window, no inline shortcut) the runtime
//!   produces bit-identical [`autoexecutor::optimizer::ResourceRequest`]s
//!   to the sequential `AutoExecutorRule`, because both funnel through the
//!   same [`autoexecutor::scoring`] entry points. The regression test in
//!   `tests/determinism.rs` pins this.
//!
//! On top of the batching machinery sits the **QoS layer** (the PixelsDB
//! model of tiered SLAs — see `docs/qos.md` at the repository root):
//!
//! * Every request carries a [`ServiceLevel`] (`Interactive` / `Standard`
//!   / `BestEffort`), an optional [`TenantId`], and a completion deadline
//!   ([`ScoreRequest`]); [`ScoringRuntime::submit`] /
//!   [`ScoringRuntime::try_submit`] return the scored plan together with
//!   its QoS disposition and a [`PriceQuote`] derived from the predicted
//!   performance curve ([`ScoreOutcome`]).
//! * Admission is a set of **per-level earliest-deadline-first queues**
//!   drained weighted-round-robin across levels (see [`qos`]); under
//!   saturation, `BestEffort` requests are shed first
//!   ([`ServeError::Shed`]) so higher promises keep their room.
//! * Per-tenant **token buckets** ([`tenant`]) police admission: over-rate
//!   tenants are demoted to `BestEffort` or rejected
//!   ([`ServeError::Throttled`]), so a flooding tenant cannot starve an
//!   in-rate one.
//!
//! Service levels never change *answers* — scoring stays a pure function
//! of features and model — only queueing delay, shedding, and price.
//!
//! For fault tolerance the runtime adds a **degraded-mode serving path**
//! (see [`breaker`] and `docs/faults.md`): an optional circuit breaker
//! trips on repeated model failures or scoring-budget breaches and routes
//! requests to a heuristic sizing rule instead of erroring them, marking
//! each such answer [`ScoreOutcome::degraded`] and counting it in
//! [`RuntimeStats::degraded`]; half-open probes restore the model path
//! once it recovers.
//!
//! Past one runtime's throughput ceiling sits the **fleet layer** (see
//! [`fleet`] and `docs/fleet.md`): a [`ShardedRuntime`] owns N complete
//! shard-local runtimes behind a deterministic consistent-hash router
//! ([`HashRing`], keyed by [`TenantId`] or feature content), with
//! bounded cross-shard work stealing that migrates least-urgent
//! `Standard`/`BestEffort` backlog — never `Interactive` — from the
//! deepest queue to the shallowest. A 1-shard fleet in deterministic
//! mode is bit-identical to a bare [`ScoringRuntime`] (pinned by
//! `tests/fleet_determinism.rs`).
//!
//! The fleet is **resilient to shard loss** (see [`fleet::resilience`]
//! and `docs/resilience.md`): a deterministic [`FleetFaultPlan`] injects
//! shard crashes, stalls, and model outages on per-shard seed streams
//! (mirroring the engine's `FaultPlan` contract); an opt-in
//! [`HealthPolicy`] drives each shard through `Healthy → Suspect →
//! Quarantined → Probation` — quarantining removes the shard from the
//! ring (only its keys move, each to its successor), evacuates its
//! `Standard`/`BestEffort` backlog into survivors with no ticket lost,
//! and failed in-flight requests are re-submitted to a surviving shard
//! under a bounded retry budget; probation re-admits a recovered shard
//! on a trickle of real traffic before full ring re-insertion
//! (`tests/fleet_resilience.rs`).
//!
//! **Observability** (see [`obs`] and `docs/observability.md`) is opt-in
//! via [`RuntimeConfig::with_observability`](config::RuntimeConfig::with_observability):
//! the runtime then publishes its counters, per-level latency
//! histograms, and the batch-size distribution into an
//! [`ae_obs::MetricsRegistry`] and records typed [`ae_obs::Event`]s
//! (admission, shed, demotion, batch drains, breaker transitions, model
//! swaps) into a bounded sink. Disabled, every instrumentation site is a
//! single untaken branch and outcomes are bit-identical (pinned by
//! `tests/obs.rs`).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod breaker;
pub mod config;
pub mod fleet;
pub mod obs;
pub mod qos;
pub mod runtime;
pub mod stats;
pub mod tenant;

pub use breaker::BreakerConfig;
pub use config::RuntimeConfig;
pub use fleet::{
    FleetConfig, FleetFaultPlan, FleetStats, HashRing, HealthPolicy, HealthState, InducedFault,
    ShardedRuntime, StealPolicy,
};
pub use obs::{ObsConfig, RuntimeObs};
pub use qos::{price_quote, price_quote_parts, PriceQuote, QosConfig, ServiceLevel};
pub use runtime::{ScoreOutcome, ScoreRequest, ScoreTicket, ScoringRuntime};
pub use stats::{LatencyRecorder, LatencySummary, LevelStats, RuntimeStats, StatsSnapshot};
pub use tenant::{TenantId, TenantPolicy, ThrottleAction};

/// Errors surfaced by the serving runtime.
///
/// Scoring and model failures carry rendered messages (not the source
/// errors) because one failure may have to be delivered to every request of
/// a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `try_score` / `try_submit` found the admission queue full with
    /// nothing sheddable (the request was counted as dropped; the caller
    /// may retry, shed load, or fall back).
    Saturated,
    /// The queued request was evicted (shed) to make room for a
    /// higher-level request under saturation. Only `BestEffort` requests
    /// are shed.
    Shed,
    /// The tenant was over its token-bucket rate under a
    /// [`ThrottleAction::Reject`] fairness policy.
    Throttled(TenantId),
    /// The runtime is shutting down; the request was not scored.
    ShutDown,
    /// The model could not be fetched from the registry or decoded.
    Model(String),
    /// Scoring itself failed (e.g. an empty candidate range).
    Scoring(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Saturated => write!(f, "scoring queue is saturated"),
            ServeError::Shed => write!(f, "request was shed under saturation"),
            ServeError::Throttled(tenant) => {
                write!(f, "{tenant} is over its admission rate")
            }
            ServeError::ShutDown => write!(f, "scoring runtime is shut down"),
            ServeError::Model(s) => write!(f, "model error: {s}"),
            ServeError::Scoring(s) => write!(f, "scoring error: {s}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ServeError>;
