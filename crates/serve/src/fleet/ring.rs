//! The deterministic consistent-hash router: a fixed virtual-node ring.
//!
//! Placement must be a pure function of `(ring seed, shard set, routing
//! key)` — independent of thread count, arrival order, and wall-clock —
//! so that the same tenant always lands on the same shard-local caches
//! (model decode, token bucket, stats) and a replayed trace routes
//! identically. The classic fixed-point construction delivers that:
//!
//! * Every shard owns [`HashRing::vnodes_per_shard`] **virtual nodes**,
//!   points on the `u64` circle drawn from the shard's own salted seed
//!   stream ([`rand::derive_stream_seed`] of `(seed, shard · replica)`),
//!   so a shard's points never depend on which *other* shards exist.
//! * A key routes to the shard owning the first point at or after the
//!   key's hash, wrapping around at `u64::MAX` (successor lookup by
//!   binary search on the sorted point list).
//! * Removing a shard removes only that shard's points: keys on every
//!   other shard keep their successor and **stay put** — the stability
//!   property `tests/fleet_ring.rs` pins.

use rand::{derive_stream_seed, split_mix64};

use crate::tenant::TenantId;

/// Salt folded into the ring seed so vnode points are decorrelated from
/// other consumers of the same base seed (e.g. workload generators).
const RING_STREAM_SALT: u64 = 0x52_49_4E_47_5F_41_45; // "RING_AE"

/// Salt folded into tenant ids before hashing them onto the ring, so a
/// small dense id space (tenant 0, 1, 2, …) still spreads uniformly.
const TENANT_KEY_SALT: u64 = 0x54_45_4E_41_4E_54; // "TENANT"

/// FNV-1a offset basis / prime, for hashing feature vectors of
/// untenanted requests (content-stable, byte-order-fixed).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A fixed virtual-node consistent-hash ring over a set of shard ids.
///
/// Construction is deterministic: the same `(seed, vnodes_per_shard,
/// shard ids)` always yields the same ring, and each shard's points are
/// derived only from its own id — see the [module docs](self) for the
/// stability contract.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard id)` sorted by point (ties broken by shard id, a
    /// deterministic order even in the astronomically unlikely event of
    /// a 64-bit point collision).
    points: Vec<(u64, u16)>,
    shard_ids: Vec<u16>,
    vnodes_per_shard: usize,
    seed: u64,
}

impl HashRing {
    /// Builds a ring over shards `0..shards` (the [`super::ShardedRuntime`]
    /// layout). `vnodes_per_shard` and `shards` are clamped to at least 1;
    /// shard counts beyond `u16::MAX` are rejected by debug assertion and
    /// clamped.
    pub fn new(seed: u64, vnodes_per_shard: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, u16::MAX as usize);
        let ids: Vec<u16> = (0..shards as u16).collect();
        Self::with_shard_ids(seed, vnodes_per_shard, &ids)
    }

    /// Builds a ring over an explicit shard-id set (what the removal-
    /// stability property tests exercise: `with_shard_ids` of a subset
    /// must agree with the full ring on every key not owned by the
    /// removed shards). Duplicate ids are ignored; an empty set is
    /// treated as `[0]`.
    pub fn with_shard_ids(seed: u64, vnodes_per_shard: usize, shard_ids: &[u16]) -> Self {
        let vnodes_per_shard = vnodes_per_shard.max(1);
        let mut ids: Vec<u16> = shard_ids.to_vec();
        ids.sort_unstable();
        ids.dedup();
        if ids.is_empty() {
            ids.push(0);
        }
        let mut points = Vec::with_capacity(ids.len() * vnodes_per_shard);
        for &shard in &ids {
            for replica in 0..vnodes_per_shard as u64 {
                // Each shard draws from its own salted stream: the stream
                // index packs (shard, replica) so no two vnodes collide in
                // their derivation, and adding/removing *other* shards
                // cannot perturb this shard's points.
                let stream = ((shard as u64) << 32) | replica;
                let point = derive_stream_seed(seed ^ RING_STREAM_SALT, stream);
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        Self {
            points,
            shard_ids: ids,
            vnodes_per_shard,
            seed,
        }
    }

    /// The sorted shard ids this ring routes over.
    pub fn shard_ids(&self) -> &[u16] {
        &self.shard_ids
    }

    /// The ring with `shard` removed — the failover/quarantine reroute:
    /// every other shard's points are untouched (the removal-stability
    /// contract), so only the removed shard's keys move, each to its
    /// successor. Removing a non-member returns an identical ring;
    /// removing the last member leaves the degenerate `[0]` ring.
    pub fn without_shard(&self, shard: u16) -> HashRing {
        let ids: Vec<u16> = self
            .shard_ids
            .iter()
            .copied()
            .filter(|&id| id != shard)
            .collect();
        Self::with_shard_ids(self.seed, self.vnodes_per_shard, &ids)
    }

    /// Number of shards on the ring.
    pub fn num_shards(&self) -> usize {
        self.shard_ids.len()
    }

    /// Virtual nodes per shard.
    pub fn vnodes_per_shard(&self) -> usize {
        self.vnodes_per_shard
    }

    /// The seed the ring was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Routes a raw 64-bit key: the shard owning the first vnode point at
    /// or after `key`, wrapping around the circle.
    pub fn shard_for_key(&self, key: u64) -> u16 {
        debug_assert!(!self.points.is_empty());
        let index = self.points.partition_point(|&(point, _)| point < key);
        let (_, shard) = if index == self.points.len() {
            self.points[0] // wraparound: successor of the largest point
        } else {
            self.points[index]
        };
        shard
    }

    /// Routes a tenant: [`shard_for_key`](Self::shard_for_key) of
    /// [`key_for_tenant`](Self::key_for_tenant).
    pub fn shard_for_tenant(&self, tenant: TenantId) -> u16 {
        self.shard_for_key(Self::key_for_tenant(tenant))
    }

    /// The ring key of a tenant: the tenant id pushed through one salted
    /// SplitMix64 round, so dense id spaces spread uniformly over the
    /// circle instead of clustering near zero.
    pub fn key_for_tenant(tenant: TenantId) -> u64 {
        let mut state = tenant.0 ^ TENANT_KEY_SALT;
        split_mix64(&mut state)
    }

    /// The ring key of an untenanted request: FNV-1a over the feature
    /// vector's IEEE-754 bit patterns (little-endian). Content-identical
    /// requests always route together — placement stays a pure function
    /// of the request, never of submission order — while distinct
    /// workloads spread across shards.
    pub fn key_for_features(features: &[f64]) -> u64 {
        let mut hash = FNV_OFFSET;
        for &value in features {
            for byte in value.to_bits().to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_is_deterministic() {
        let a = HashRing::new(7, 64, 4);
        let b = HashRing::new(7, 64, 4);
        assert_eq!(a.points, b.points);
        for tenant in 0..500u64 {
            assert_eq!(
                a.shard_for_tenant(TenantId(tenant)),
                b.shard_for_tenant(TenantId(tenant))
            );
        }
        // A different seed draws a different ring (statistically certain
        // over 256 vnode points).
        let c = HashRing::new(8, 64, 4);
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn every_shard_receives_traffic() {
        let ring = HashRing::new(42, 64, 8);
        let mut per_shard = [0usize; 8];
        for tenant in 0..4096u64 {
            per_shard[ring.shard_for_tenant(TenantId(tenant)) as usize] += 1;
        }
        for (shard, &count) in per_shard.iter().enumerate() {
            assert!(count > 0, "shard {shard} received no tenants");
        }
    }

    #[test]
    fn wraparound_routes_to_the_smallest_point() {
        let ring = HashRing::new(3, 8, 3);
        let largest = ring.points.last().unwrap().0;
        if largest < u64::MAX {
            let first_shard = ring.points[0].1;
            assert_eq!(ring.shard_for_key(largest.wrapping_add(1)), first_shard);
        }
        assert_eq!(ring.shard_for_key(0), ring.points[0].1);
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let ring = HashRing::new(1, 0, 0);
        assert_eq!(ring.num_shards(), 1);
        assert_eq!(ring.vnodes_per_shard(), 1);
        assert_eq!(ring.shard_for_key(u64::MAX), 0);
        let dup = HashRing::with_shard_ids(1, 4, &[2, 2, 5]);
        assert_eq!(dup.shard_ids(), &[2, 5]);
    }

    #[test]
    fn without_shard_matches_explicit_subset_construction() {
        let full = HashRing::new(11, 32, 5);
        let removed = full.without_shard(3);
        let explicit = HashRing::with_shard_ids(11, 32, &[0, 1, 2, 4]);
        assert_eq!(removed.points, explicit.points);
        // Surviving keys stay put; shard 3's keys move to live successors.
        for tenant in 0..2000u64 {
            let before = full.shard_for_tenant(TenantId(tenant));
            let after = removed.shard_for_tenant(TenantId(tenant));
            if before != 3 {
                assert_eq!(before, after, "tenant {tenant} moved without cause");
            } else {
                assert_ne!(after, 3, "tenant {tenant} routed to the removed shard");
            }
        }
        // Removing a non-member changes nothing.
        assert_eq!(full.without_shard(9).points, full.points);
    }

    #[test]
    fn feature_keys_are_content_stable() {
        let a = HashRing::key_for_features(&[1.0, -0.5, 3.25]);
        let b = HashRing::key_for_features(&[1.0, -0.5, 3.25]);
        assert_eq!(a, b);
        assert_ne!(a, HashRing::key_for_features(&[1.0, -0.5, 3.26]));
        // -0.0 and 0.0 have different bit patterns: keys follow the bits.
        assert_ne!(
            HashRing::key_for_features(&[0.0]),
            HashRing::key_for_features(&[-0.0])
        );
    }
}
