//! The sharded fleet runtime: N shard-local [`ScoringRuntime`]s behind a
//! deterministic consistent-hash router, with bounded cross-shard work
//! stealing and health-driven failover.
//!
//! Request flow:
//!
//! ```text
//!  client threads                    shards (config.shards)
//!  ──────────────                    ─────────────────────────────
//!  hash tenant (or features) ──────▶ shard-local ScoringRuntime:
//!  onto the current vnode ring        own queues / workers / model
//!                                     cache / breaker / stats / obs
//!                steal coordinator (policy.interval, backs off idle):
//!                deepest backlog ≥ ratio × shallowest?
//!                → migrate EDF-tail Standard/BestEffort
//!                  entries to the shallowest routable shard
//!                health monitor (policy.check_interval):
//!                error rate / open breaker / drain stall
//!                → Suspect → Quarantined (ring removal + backlog
//!                  evacuation) → Probation (trickle) → Healthy
//! ```
//!
//! Contracts, pinned by `tests/fleet_determinism.rs`,
//! `tests/fleet_stress.rs`, and `tests/fleet_resilience.rs`:
//!
//! * **Routing is deterministic**: placement is a pure function of
//!   `(ring seed, current ring membership, tenant)` — never of thread
//!   interleaving, load, or wall-clock (see [`HashRing`]). With no
//!   health policy the membership never changes, so routing reduces to
//!   the PR-8 pure function of `(seed, shard count, tenant)`.
//! * **Sharding never changes answers**: scoring is a pure function of
//!   features and model, so which shard (thief, evacuee host, or
//!   failover target) scores a request can only change *when* it
//!   completes, never the [`ResourceRequest`]. A 1-shard fleet in
//!   deterministic mode is bit-identical to a bare [`ScoringRuntime`],
//!   and a fleet with [`FleetFaultPlan::none`] and no health policy is
//!   bit-identical to the fleet before resilience existed.
//! * **Counters are exact**: every request is counted by exactly one
//!   shard — the one that scored it — so [`FleetStats::aggregate`]
//!   totals equal the sum of per-shard counters with no double-count on
//!   stolen, evacuated, or retried requests. A rescued failover retry
//!   leaves one error on the failed shard and one completion on the
//!   target, so `aggregate().errors` equals client-visible errors plus
//!   [`FleetStats::failover_retries`].

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex as StdMutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ae_engine::plan::QueryPlan;
use ae_obs::{EventKind, EventSink, MetricSource, MetricValue};
use autoexecutor::config::AutoExecutorConfig;
use autoexecutor::optimizer::ResourceRequest;
use autoexecutor::registry::ModelRegistry;
use parking_lot::RwLock;

use super::resilience::{
    FaultEvent, FleetFaultPlan, HealthPolicy, HealthState, InducedFault, RetryBudget,
};
use super::ring::HashRing;
use super::stats::FleetStats;
use crate::config::RuntimeConfig;
use crate::qos::{QueuedRequest, ServiceLevel};
use crate::runtime::{lock, ScoreOutcome, ScoreRequest, ScoreTicket, ScoringRuntime};
use crate::{Result, ServeError};

/// Default virtual nodes per shard: enough that per-shard load shares
/// concentrate near `1/N` for the fleet sizes the bench drives (≤ 8).
const DEFAULT_VNODES_PER_SHARD: usize = 128;

/// Default ring seed. Fixed so that two fleets built from the same config
/// route identically without the caller threading a seed through.
const DEFAULT_RING_SEED: u64 = 0x0AE5_E11F_1EE7;

/// Idle-backoff floor for the steal coordinator: a zero configured
/// interval still doubles from here instead of spinning.
const STEAL_BACKOFF_FLOOR: Duration = Duration::from_micros(50);

/// Idle-backoff ceiling for the steal coordinator (an idle fleet polls
/// at ~100 Hz instead of 10 kHz).
const STEAL_BACKOFF_CAP: Duration = Duration::from_millis(10);

/// Background threads chunk their sleeps to this so shutdown never waits
/// a full (possibly long) configured interval.
const STOP_POLL: Duration = Duration::from_millis(2);

/// When and how much the fleet's steal coordinator rebalances.
///
/// Stealing is **bounded and priority-safe**: at most
/// [`max_steal`](Self::max_steal) requests move per operation, only from
/// the deepest backlog to the shallowest routable shard, only when the
/// imbalance test fires, and only `Standard`/`BestEffort` entries from
/// the EDF tail — never `Interactive` (see
/// [`PriorityQueues::steal_least_urgent`](crate::qos)).
#[derive(Debug, Clone)]
pub struct StealPolicy {
    /// Trigger threshold: steal only when the deepest shard's queue depth
    /// is at least `imbalance_ratio × (shallowest depth + 1)`. Clamped to
    /// at least 1.0 (values below would "rebalance" toward imbalance).
    pub imbalance_ratio: f64,
    /// Victim floor: never steal from a shard whose backlog is below this
    /// many requests — shallow queues drain faster than a migration pays
    /// off.
    pub min_backlog: usize,
    /// Upper bound on requests migrated per steal operation (clamped to
    /// at least 1).
    pub max_steal: usize,
    /// Base poll interval of the steal coordinator thread. When a pass
    /// moves nothing the interval doubles (capped near 10 ms); any
    /// migrated work resets it.
    pub interval: Duration,
}

impl Default for StealPolicy {
    fn default() -> Self {
        Self {
            imbalance_ratio: 2.0,
            min_backlog: 32,
            max_steal: 16,
            interval: Duration::from_micros(100),
        }
    }
}

impl StealPolicy {
    fn sanitized(mut self) -> Self {
        if self.imbalance_ratio.is_nan() || self.imbalance_ratio < 1.0 {
            self.imbalance_ratio = 1.0;
        }
        self.max_steal = self.max_steal.max(1);
        self
    }
}

/// The steal coordinator's idle backoff: double the current delay (from
/// a spin-safe floor) up to the larger of the configured base and
/// [`STEAL_BACKOFF_CAP`]. Pure, so the schedule is unit-testable.
fn next_backoff(current: Duration, base: Duration) -> Duration {
    let cap = base.max(STEAL_BACKOFF_CAP);
    (current.max(STEAL_BACKOFF_FLOOR) * 2).min(cap)
}

/// Configuration of a [`ShardedRuntime`]: how many shards, how they are
/// keyed onto the ring, whether (and how aggressively) to steal, the
/// health/failover policy, the chaos plan, and the per-shard
/// [`RuntimeConfig`] template.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shard-local runtimes (clamped to `1..=u16::MAX`).
    pub shards: usize,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub vnodes_per_shard: usize,
    /// Seed of the vnode ring. Two fleets with equal
    /// `(ring_seed, vnodes_per_shard, shards)` route every tenant
    /// identically.
    pub ring_seed: u64,
    /// Cross-shard work stealing; `None` disables it (required for the
    /// deterministic-mode contract — migration timing is load-dependent).
    pub steal: Option<StealPolicy>,
    /// Health monitoring, quarantine/failover, and probationary recovery;
    /// `None` (the default) spawns no monitor and leaves the fleet
    /// behaviorally identical to PR 8 (see `docs/resilience.md`).
    pub health: Option<HealthPolicy>,
    /// Deterministic chaos schedule. [`FleetFaultPlan::none`] (the
    /// default) is provably inert: no injector thread, no hot-path cost.
    pub fault_plan: FleetFaultPlan,
    /// Template for every shard's [`ScoringRuntime`]. When observability
    /// is configured, each shard registers under
    /// `{prefix}.shard{i}` and the fleet itself under `{prefix}.fleet`.
    pub runtime: RuntimeConfig,
}

impl FleetConfig {
    /// A fleet of `shards` runtimes built from the given per-shard
    /// template, with default ring layout, default work stealing, no
    /// health policy, and no fault plan.
    pub fn new(shards: usize, runtime: RuntimeConfig) -> Self {
        Self {
            shards,
            vnodes_per_shard: DEFAULT_VNODES_PER_SHARD,
            ring_seed: DEFAULT_RING_SEED,
            steal: Some(StealPolicy::default()),
            health: None,
            fault_plan: FleetFaultPlan::none(),
            runtime,
        }
    }

    /// Serving defaults per shard ([`RuntimeConfig::from_auto_executor`])
    /// with default stealing.
    pub fn from_auto_executor(shards: usize, config: &AutoExecutorConfig) -> Self {
        Self::new(shards, RuntimeConfig::from_auto_executor(config))
    }

    /// Deterministic fleet: every shard in
    /// [`RuntimeConfig::deterministic`] mode, **no work stealing**, no
    /// health policy, and no fault plan, so completion sets, per-shard
    /// placement, and (for a 1-shard fleet) the full observable behavior
    /// are reproducible. Scores are bit-identical to the sequential rule
    /// at any shard count — routing only decides *where* a request is
    /// scored, never its answer.
    pub fn deterministic(shards: usize, config: &AutoExecutorConfig) -> Self {
        Self {
            shards,
            vnodes_per_shard: DEFAULT_VNODES_PER_SHARD,
            ring_seed: DEFAULT_RING_SEED,
            steal: None,
            health: None,
            fault_plan: FleetFaultPlan::none(),
            runtime: RuntimeConfig::deterministic(config),
        }
    }

    /// Overrides the vnode count per shard (clamped to at least 1).
    pub fn with_vnodes_per_shard(mut self, vnodes: usize) -> Self {
        self.vnodes_per_shard = vnodes.max(1);
        self
    }

    /// Overrides the ring seed.
    pub fn with_ring_seed(mut self, seed: u64) -> Self {
        self.ring_seed = seed;
        self
    }

    /// Enables stealing with the given policy.
    pub fn with_steal(mut self, policy: StealPolicy) -> Self {
        self.steal = Some(policy);
        self
    }

    /// Disables work stealing.
    pub fn without_steal(mut self) -> Self {
        self.steal = None;
        self
    }

    /// Enables health monitoring, quarantine/failover, and probationary
    /// recovery with the given policy.
    pub fn with_health(mut self, policy: HealthPolicy) -> Self {
        self.health = Some(policy);
        self
    }

    /// Installs a deterministic chaos schedule (see
    /// [`FleetFaultPlan`]; invalid rates are clamped to zero).
    pub fn with_fault_plan(mut self, plan: FleetFaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Replaces the per-shard runtime template.
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    fn sanitized(mut self) -> Self {
        self.shards = self.shards.clamp(1, u16::MAX as usize);
        self.vnodes_per_shard = self.vnodes_per_shard.max(1);
        self.steal = self.steal.map(StealPolicy::sanitized);
        self.health = self.health.map(HealthPolicy::sanitized);
        self.fault_plan = self.fault_plan.sanitized();
        self
    }
}

/// State shared between the fleet handle and its background threads
/// (steal coordinator, health monitor, chaos injector).
struct FleetShared {
    shards: Vec<ScoringRuntime>,
    /// The current routing ring: members are exactly the shards whose
    /// [`HealthState::is_routable`]. Rebuilt (never mutated in place) on
    /// quarantine and recovery; with no health policy it never changes.
    ring: RwLock<HashRing>,
    ring_seed: u64,
    vnodes_per_shard: usize,
    /// Per-shard [`HealthState`] words (written only by the monitor).
    health: Vec<AtomicU8>,
    /// The sanitized health policy, when monitoring is enabled.
    health_policy: Option<HealthPolicy>,
    /// The failover retry token bucket (present iff a health policy with
    /// a non-zero budget is configured on a multi-shard fleet).
    retry_budget: Option<RetryBudget>,
    steal_ops: AtomicU64,
    stolen_requests: AtomicU64,
    quarantines: AtomicU64,
    recoveries: AtomicU64,
    evacuated_requests: AtomicU64,
    failover_retries: AtomicU64,
    retries_denied: AtomicU64,
    /// Round-robin counter for the probation trickle diversion.
    probe_counter: AtomicU64,
    /// Fast-path gate: true iff some shard is in [`HealthState::Probation`].
    /// False in steady state, so submission pays one relaxed load.
    probation_active: AtomicBool,
    /// Fleet-level event sink (steals, quarantines, recoveries, retries,
    /// evacuations); present only when the per-shard template enables
    /// observability.
    events: Option<EventSink>,
    /// Stops every background thread (steal, monitor, injector).
    stop_background: AtomicBool,
    /// Set by the first [`ShardedRuntime::shutdown`] caller; failover
    /// stops retrying so shutdown errors propagate unamplified.
    shutting_down: AtomicBool,
}

impl FleetShared {
    fn record_event(&self, kind: EventKind) {
        if let Some(events) = &self.events {
            events.record(kind);
        }
    }

    fn health_state(&self, shard: usize) -> HealthState {
        HealthState::from_u8(self.health[shard].load(Ordering::Acquire))
    }

    fn set_health(&self, shard: usize, state: HealthState) {
        self.health[shard].store(state as u8, Ordering::Release);
    }

    /// Shard indices currently eligible for routing and stealing.
    fn routable_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&shard| self.health_state(shard).is_routable())
            .collect()
    }

    /// Rebuilds the routing ring from the current routable membership.
    /// Non-members' vnode points are untouched by construction, so every
    /// surviving shard keeps its keys (the removal-stability contract).
    fn rebuild_ring(&self) {
        let members: Vec<u16> = self
            .routable_shards()
            .into_iter()
            .map(|shard| shard as u16)
            .collect();
        let ring = HashRing::with_shard_ids(self.ring_seed, self.vnodes_per_shard, &members);
        *self.ring.write() = ring;
    }

    /// Recomputes the probation fast-path gate.
    fn refresh_probation_flag(&self) {
        let any =
            (0..self.shards.len()).any(|shard| self.health_state(shard) == HealthState::Probation);
        self.probation_active.store(any, Ordering::Release);
    }
}

/// Publishes the fleet's own counters (steal + resilience accounting,
/// membership, per-shard health) under `{prefix}.fleet`; the per-shard
/// runtime counters are published by each shard's own stats source under
/// `{prefix}.shard{i}`.
struct FleetSource {
    prefix: String,
    shared: Weak<FleetShared>,
}

impl MetricSource for FleetSource {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        let Some(shared) = self.shared.upgrade() else {
            return;
        };
        let p = &self.prefix;
        let counters = [
            ("steal_ops", &shared.steal_ops),
            ("stolen_requests", &shared.stolen_requests),
            ("quarantines", &shared.quarantines),
            ("recoveries", &shared.recoveries),
            ("evacuated_requests", &shared.evacuated_requests),
            ("failover_retries", &shared.failover_retries),
            ("retries_denied", &shared.retries_denied),
        ];
        for (name, counter) in counters {
            out.push((
                format!("{p}.{name}"),
                MetricValue::Counter(counter.load(Ordering::Relaxed)),
            ));
        }
        out.push((
            format!("{p}.shards"),
            MetricValue::Gauge(shared.shards.len() as f64),
        ));
        out.push((
            format!("{p}.routable_shards"),
            MetricValue::Gauge(shared.routable_shards().len() as f64),
        ));
        for shard in 0..shared.shards.len() {
            out.push((
                format!("{p}.health.shard{shard}"),
                MetricValue::Gauge(f64::from(shared.health_state(shard) as u8)),
            ));
        }
    }
}

/// Sleeps up to `total`, waking early (within [`STOP_POLL`]) when `stop`
/// is set — background threads must not pin shutdown to their interval.
fn sleep_interruptible(stop: &AtomicBool, total: Duration) {
    let deadline = Instant::now() + total;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(STOP_POLL));
    }
}

/// One pass of the steal coordinator over the routable shards: find the
/// deepest and shallowest backlogs, apply the imbalance test, migrate a
/// bounded batch of least-urgent non-`Interactive` entries. Returns the
/// number of requests migrated (0 when balanced, bounded, or nothing
/// sheddable). Quarantined/probation shards neither donate nor receive —
/// stealing into a dead shard would re-strand evacuated work.
fn rebalance_once(shared: &FleetShared, policy: &StealPolicy) -> usize {
    let routable = shared.routable_shards();
    if routable.len() < 2 {
        return 0;
    }
    let depths: Vec<(usize, usize)> = routable
        .iter()
        .map(|&shard| (shard, shared.shards[shard].queue_depth()))
        .collect();
    let Some(&(victim, max_depth)) = depths.iter().max_by_key(|&&(_, depth)| depth) else {
        return 0;
    };
    let Some(&(thief, min_depth)) = depths.iter().min_by_key(|&&(_, depth)| depth) else {
        return 0;
    };
    if victim == thief || max_depth < policy.min_backlog {
        return 0;
    }
    if (max_depth as f64) < policy.imbalance_ratio * (min_depth as f64 + 1.0) {
        return 0;
    }
    // Bounded: per-op cap, half the gap (stealing more would overshoot
    // and invite a steal back), the thief's free queue room, and the
    // victim's actually-migratable (non-Interactive) backlog.
    let budget = policy
        .max_steal
        .min((max_depth - min_depth) / 2)
        .min(shared.shards[thief].free_queue_capacity())
        .min(shared.shards[victim].evacuable_backlog());
    if budget == 0 {
        return 0;
    }
    let stolen = shared.shards[victim].steal_backlog(budget);
    if stolen.is_empty() {
        return 0;
    }
    let count = stolen.len();
    let rejected = shared.shards[thief].inject_backlog(stolen);
    if !rejected.is_empty() {
        // The thief is shutting down: re-home the batch. If the victim is
        // shutting down too, fail the stranded requests — exactly what
        // shutdown does to its own queue.
        let stranded = shared.shards[victim].inject_backlog(rejected);
        if !stranded.is_empty() {
            shared.shards[victim].abandon_backlog(stranded);
        }
        return 0;
    }
    shared.steal_ops.fetch_add(1, Ordering::Relaxed);
    shared
        .stolen_requests
        .fetch_add(count as u64, Ordering::Relaxed);
    shared.record_event(EventKind::WorkSteal {
        from_shard: victim as u16,
        to_shard: thief as u16,
        count: count.min(u32::MAX as usize) as u32,
    });
    count
}

/// Steal coordinator thread: poll at the policy interval while work
/// moves, back off exponentially (to ~10 ms) while the fleet is
/// balanced, reset on the first migrated request.
fn stealer_loop(shared: Arc<FleetShared>, policy: StealPolicy) {
    let mut delay = policy.interval;
    loop {
        sleep_interruptible(&shared.stop_background, delay);
        if shared.stop_background.load(Ordering::Acquire) {
            return;
        }
        let moved = rebalance_once(&shared, &policy);
        delay = if moved > 0 {
            policy.interval
        } else {
            next_backoff(delay, policy.interval)
        };
    }
}

/// Per-shard bookkeeping the health monitor keeps between checks.
#[derive(Default)]
struct ShardBook {
    /// Cumulative counters at the previous check (window deltas).
    completed: u64,
    errors: u64,
    /// Consecutive checks with queued work and zero progress.
    stall_streak: u32,
    /// When the shard entered quarantine.
    quarantined_at: Option<Instant>,
    /// Cumulative `(completed, errors)` at probation start.
    probation_base: Option<(u64, u64)>,
    /// Consecutive error-free probation checks.
    clean_checks: u32,
}

/// Health monitor thread: one [`check_shard`] per shard per interval.
fn monitor_loop(shared: Arc<FleetShared>, policy: HealthPolicy) {
    let mut books: Vec<ShardBook> = shared
        .shards
        .iter()
        .map(|shard| {
            let stats = shard.stats();
            ShardBook {
                completed: stats.completed,
                errors: stats.errors,
                ..ShardBook::default()
            }
        })
        .collect();
    loop {
        sleep_interruptible(&shared.stop_background, policy.check_interval);
        if shared.stop_background.load(Ordering::Acquire) {
            return;
        }
        for (shard, book) in books.iter_mut().enumerate() {
            check_shard(&shared, &policy, shard, book);
        }
    }
}

/// One health check of one shard: advance the window deltas, then drive
/// the `Healthy → Suspect → Quarantined → Probation` machine.
fn check_shard(shared: &FleetShared, policy: &HealthPolicy, shard: usize, book: &mut ShardBook) {
    let stats = shared.shards[shard].stats();
    let window_completed = stats.completed.saturating_sub(book.completed);
    let window_errors = stats.errors.saturating_sub(book.errors);
    book.completed = stats.completed;
    book.errors = stats.errors;
    match shared.health_state(shard) {
        state @ (HealthState::Healthy | HealthState::Suspect) => {
            let events = window_completed + window_errors;
            let mut bad = false;
            // Error-rate signal, gated on a minimum event count so one
            // unlucky request cannot condemn an idle shard.
            if events >= policy.min_window_events.max(1)
                && window_errors as f64 >= policy.error_rate_threshold * events as f64
            {
                bad = true;
            }
            // Breaker signal: an open breaker means the model path is
            // down (read-only check; the half-open probe is preserved).
            if shared.shards[shard].breaker_open() {
                bad = true;
            }
            // Drain-stall watchdog: queued work, zero progress, for
            // `stall_checks` consecutive checks (a wedged or straggling
            // shard that produces neither completions nor errors).
            if shared.shards[shard].queue_depth() >= policy.stall_depth.max(1)
                && window_completed == 0
                && window_errors == 0
            {
                book.stall_streak += 1;
                if book.stall_streak >= policy.stall_checks {
                    bad = true;
                }
            } else {
                book.stall_streak = 0;
            }
            if bad {
                if state == HealthState::Healthy {
                    shared.set_health(shard, HealthState::Suspect);
                } else {
                    quarantine(shared, shard, book);
                }
            } else if state == HealthState::Suspect && events > 0 {
                // A clean window with real traffic clears the suspicion.
                shared.set_health(shard, HealthState::Healthy);
            }
        }
        HealthState::Quarantined => {
            let held_long_enough = match book.quarantined_at {
                Some(at) => at.elapsed() >= policy.quarantine_hold,
                None => true,
            };
            if held_long_enough {
                shared.set_health(shard, HealthState::Probation);
                book.probation_base = Some((stats.completed, stats.errors));
                book.clean_checks = 0;
                shared.refresh_probation_flag();
            }
        }
        HealthState::Probation => {
            let (base_completed, base_errors) =
                book.probation_base.unwrap_or((book.completed, book.errors));
            if stats.errors.saturating_sub(base_errors) > 0 {
                // The trickle failed: back to quarantine (counted again),
                // and evacuate whatever the trickle queued on it.
                quarantine(shared, shard, book);
            } else {
                book.clean_checks += 1;
                let proven = stats.completed.saturating_sub(base_completed)
                    >= policy.probation_min_completions;
                if proven && book.clean_checks >= policy.probation_checks {
                    recover(shared, shard, book);
                }
            }
        }
    }
}

/// Quarantines a shard: off the ring (successor rerouting), backlog
/// evacuated to survivors, hold timer started. Refuses to remove the
/// last routable shard — a fleet with nowhere to route keeps serving
/// (however badly) rather than blackholing everything.
fn quarantine(shared: &FleetShared, shard: usize, book: &mut ShardBook) {
    let was_probation = shared.health_state(shard) == HealthState::Probation;
    if !was_probation && shared.routable_shards().len() <= 1 {
        return;
    }
    shared.set_health(shard, HealthState::Quarantined);
    if !was_probation {
        // A probation shard is already off the ring.
        shared.rebuild_ring();
    }
    shared.quarantines.fetch_add(1, Ordering::Relaxed);
    book.quarantined_at = Some(Instant::now());
    book.stall_streak = 0;
    book.probation_base = None;
    book.clean_checks = 0;
    shared.record_event(EventKind::ShardQuarantine {
        shard: shard as u16,
    });
    evacuate(shared, shard);
    shared.refresh_probation_flag();
}

/// Re-admits a probation shard: back on the ring, counters reset.
fn recover(shared: &FleetShared, shard: usize, book: &mut ShardBook) {
    shared.set_health(shard, HealthState::Healthy);
    shared.rebuild_ring();
    shared.recoveries.fetch_add(1, Ordering::Relaxed);
    book.quarantined_at = None;
    book.probation_base = None;
    book.clean_checks = 0;
    book.stall_streak = 0;
    shared.record_event(EventKind::ShardRecover {
        shard: shard as u16,
    });
    shared.refresh_probation_flag();
}

/// Evacuates a quarantined shard's migratable backlog (`Standard` ∪
/// `BestEffort`; `Interactive` always drains on its home shard) into the
/// surviving routable shards, shallowest first, split evenly. Every
/// ticket survives: a survivor rejects an injection only while shutting
/// down, in which case the batch cascades to the next survivor, then
/// re-homes to the victim (whose workers still run under quarantine),
/// then — both ends shutting down — fails with `ShutDown` exactly like
/// shutdown's own queue drain.
fn evacuate(shared: &FleetShared, from: usize) {
    let mut remaining: Vec<QueuedRequest> = shared.shards[from].steal_backlog(usize::MAX);
    if remaining.is_empty() {
        return;
    }
    let total = remaining.len();
    let mut survivors: Vec<usize> = shared
        .routable_shards()
        .into_iter()
        .filter(|&shard| shard != from)
        .collect();
    survivors.sort_by_key(|&shard| shared.shards[shard].queue_depth());
    let count = survivors.len();
    for (index, &target) in survivors.iter().enumerate() {
        if remaining.is_empty() {
            break;
        }
        let share = remaining.len().div_ceil(count - index);
        let batch: Vec<QueuedRequest> = remaining.drain(..share).collect();
        let rejected = shared.shards[target].inject_backlog(batch);
        remaining.extend(rejected);
    }
    let moved = total - remaining.len();
    if !remaining.is_empty() {
        let stranded = shared.shards[from].inject_backlog(remaining);
        if !stranded.is_empty() {
            shared.shards[from].abandon_backlog(stranded);
        }
    }
    if moved > 0 {
        shared
            .evacuated_requests
            .fetch_add(moved as u64, Ordering::Relaxed);
        shared.record_event(EventKind::BacklogEvacuation {
            from_shard: from as u16,
            count: moved.min(u32::MAX as usize) as u32,
        });
    }
}

/// Chaos injector thread: replays the deterministic fault schedule
/// against the wall clock, applying each fault at its start offset and
/// clearing it at its end. Spawned only when the plan is active.
fn injector_loop(shared: Arc<FleetShared>, schedule: Vec<FaultEvent>) {
    // Interleave applies and clears into one timeline. Overlapping
    // windows of *different* kinds on one shard resolve last-writer-wins
    // (the fault word holds one fault), which the deterministic schedule
    // makes reproducible.
    let mut actions: Vec<(Duration, usize, Option<InducedFault>)> = Vec::new();
    for event in &schedule {
        actions.push((event.at, event.shard, Some(event.fault)));
        actions.push((event.until, event.shard, None));
    }
    actions.sort_by_key(|&(at, shard, fault)| (at, fault.is_some(), shard));
    let start = Instant::now();
    for (at, shard, fault) in actions {
        loop {
            if shared.stop_background.load(Ordering::Acquire) {
                return;
            }
            let elapsed = start.elapsed();
            if elapsed >= at {
                break;
            }
            std::thread::sleep((at - elapsed).min(STOP_POLL));
        }
        shared.shards[shard].set_induced_fault(fault);
    }
}

/// True for errors a cross-shard retry can plausibly rescue: the failed
/// shard's model/scoring path is down, or that one shard is shutting
/// down. Saturation, shedding, and throttling are *policy* outcomes —
/// retrying them elsewhere would launder QoS decisions.
fn retryable(error: &ServeError) -> bool {
    matches!(
        error,
        ServeError::Model(_) | ServeError::Scoring(_) | ServeError::ShutDown
    )
}

/// The ring key a request routes by: its tenant's position, or — for
/// untenanted requests — the position of its feature content.
fn routing_key(request: &ScoreRequest) -> u64 {
    match request.tenant() {
        Some(tenant) => HashRing::key_for_tenant(tenant),
        None => HashRing::key_for_features(request.features()),
    }
}

/// A fleet of shard-local [`ScoringRuntime`]s behind a deterministic
/// consistent-hash router, with optional bounded work stealing and
/// health-driven failover. See the [module docs](self) for the
/// architecture and contracts.
///
/// Construct with [`ShardedRuntime::new`]; submit from any thread with
/// the same request vocabulary as a single runtime
/// ([`submit`](Self::submit), [`try_submit`](Self::try_submit),
/// [`submit_detached`](Self::submit_detached), …); inspect with
/// [`stats`](Self::stats) (per-shard + aggregate + health); stop with
/// [`shutdown`](Self::shutdown) (or drop the handle).
pub struct ShardedRuntime {
    shared: Arc<FleetShared>,
    /// Background threads (steal coordinator, health monitor, chaos
    /// injector), joined once by whichever shutdown call drains them.
    background: StdMutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("shards", &self.shared.shards.len())
            .field("queue_depths", &self.queue_depths())
            .field("health", &self.health())
            .finish()
    }
}

impl ShardedRuntime {
    /// Builds the fleet: `config.shards` runtimes over one registry and
    /// model name, a vnode ring keyed by `config.ring_seed`, and the
    /// configured background threads — the steal coordinator (unless
    /// disabled), the health monitor (when a policy is set on a
    /// multi-shard fleet), and the chaos injector (when the fault plan is
    /// active).
    ///
    /// With observability configured in the per-shard template, shard `i`
    /// registers its metrics under `{prefix}.shard{i}` and the fleet
    /// registers its own counters under `{prefix}.fleet` — all in the
    /// same registry, no name collisions.
    pub fn new(
        registry: Arc<ModelRegistry>,
        model_name: impl Into<String>,
        config: FleetConfig,
    ) -> Self {
        let config = config.sanitized();
        let model_name = model_name.into();
        let base_obs = config.runtime.observability.clone();
        let shards: Vec<ScoringRuntime> = (0..config.shards)
            .map(|shard| {
                let mut runtime_config = config.runtime.clone();
                if let Some(obs) = &mut runtime_config.observability {
                    obs.prefix = format!("{}.shard{shard}", obs.prefix);
                }
                ScoringRuntime::new(Arc::clone(&registry), model_name.clone(), runtime_config)
            })
            .collect();
        // Health monitoring and failover need somewhere to fail over to.
        let health_policy = config.health.filter(|_| config.shards > 1);
        let retry_budget = health_policy
            .as_ref()
            .filter(|policy| policy.retry_budget > 0)
            .map(|policy| {
                RetryBudget::new(
                    policy.retry_budget,
                    policy.retry_refill_per_sec,
                    Instant::now(),
                )
            });
        let shared = Arc::new(FleetShared {
            ring: RwLock::new(HashRing::new(
                config.ring_seed,
                config.vnodes_per_shard,
                config.shards,
            )),
            ring_seed: config.ring_seed,
            vnodes_per_shard: config.vnodes_per_shard,
            health: (0..config.shards)
                .map(|_| AtomicU8::new(HealthState::Healthy as u8))
                .collect(),
            health_policy,
            retry_budget,
            shards,
            steal_ops: AtomicU64::new(0),
            stolen_requests: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            evacuated_requests: AtomicU64::new(0),
            failover_retries: AtomicU64::new(0),
            retries_denied: AtomicU64::new(0),
            probe_counter: AtomicU64::new(0),
            probation_active: AtomicBool::new(false),
            events: base_obs
                .as_ref()
                .map(|obs| EventSink::new(obs.event_capacity)),
            stop_background: AtomicBool::new(false),
            shutting_down: AtomicBool::new(false),
        });
        if let Some(obs) = &base_obs {
            obs.registry.register_source(Box::new(FleetSource {
                prefix: format!("{}.fleet", obs.prefix),
                shared: Arc::downgrade(&shared),
            }));
        }
        let mut background = Vec::new();
        if let Some(policy) = config.steal.filter(|_| config.shards > 1) {
            let shared = Arc::clone(&shared);
            background.push(
                std::thread::Builder::new()
                    .name("ae-serve-stealer".to_string())
                    .spawn(move || stealer_loop(shared, policy))
                    .expect("spawning the fleet steal coordinator"),
            );
        }
        if let Some(policy) = shared.health_policy.clone() {
            let shared_clone = Arc::clone(&shared);
            background.push(
                std::thread::Builder::new()
                    .name("ae-serve-health".to_string())
                    .spawn(move || monitor_loop(shared_clone, policy))
                    .expect("spawning the fleet health monitor"),
            );
        }
        if config.fault_plan.is_active() {
            let schedule = config.fault_plan.schedule(config.shards);
            let shared_clone = Arc::clone(&shared);
            background.push(
                std::thread::Builder::new()
                    .name("ae-serve-chaos".to_string())
                    .spawn(move || injector_loop(shared_clone, schedule))
                    .expect("spawning the fleet chaos injector"),
            );
        }
        Self {
            shared,
            background: StdMutex::new(background),
        }
    }

    /// Pre-resolves the model on every shard (each shard holds its own
    /// decoded-model cache), so no shard pays the cold-start decode on
    /// its first request.
    pub fn warm(&self) -> Result<()> {
        for shard in &self.shared.shards {
            shard.warm()?;
        }
        Ok(())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Direct handle to one shard's runtime (tests and benchmarks; going
    /// through the shard handle bypasses the router).
    pub fn shard(&self, shard: usize) -> &ScoringRuntime {
        &self.shared.shards[shard]
    }

    /// A snapshot of the fleet's current consistent-hash ring (members
    /// are the routable shards; without a health policy, all of them).
    pub fn ring(&self) -> HashRing {
        self.shared.ring.read().clone()
    }

    /// One shard's current health state.
    pub fn shard_health(&self, shard: usize) -> HealthState {
        self.shared.health_state(shard)
    }

    /// Every shard's current health state, indexed by shard id.
    pub fn health(&self) -> Vec<HealthState> {
        (0..self.shared.shards.len())
            .map(|shard| self.shared.health_state(shard))
            .collect()
    }

    /// Induces a chaos fault on one shard (the programmatic analogue of
    /// a [`FleetFaultPlan`] window — tests and operational drills).
    /// Takes effect on the shard's next batch; overwrites any prior
    /// induced fault.
    pub fn induce_shard_fault(&self, shard: usize, fault: InducedFault) {
        self.shared.shards[shard].set_induced_fault(Some(fault));
    }

    /// Clears any induced chaos fault on one shard. Service recovers on
    /// the next batch (modulo a still-open breaker cooling down); ring
    /// re-admission is the health monitor's probation path, not this.
    pub fn clear_shard_fault(&self, shard: usize) {
        self.shared.shards[shard].set_induced_fault(None);
    }

    /// The currently induced chaos fault on one shard, if any.
    pub fn shard_fault(&self, shard: usize) -> Option<InducedFault> {
        self.shared.shards[shard].induced_fault()
    }

    /// The shard a request routes to: its tenant's position on the
    /// current ring, or — for untenanted requests — the position of its
    /// feature content. A pure function of the request and the current
    /// ring membership (which only a health policy ever changes).
    pub fn route(&self, request: &ScoreRequest) -> usize {
        self.shared.ring.read().shard_for_key(routing_key(request)) as usize
    }

    /// The shard a tenant routes to on the current ring.
    pub fn shard_for_tenant(&self, tenant: crate::tenant::TenantId) -> usize {
        self.shared.ring.read().shard_for_tenant(tenant) as usize
    }

    /// [`route`](Self::route), plus the probation trickle: when some
    /// shard is in [`HealthState::Probation`], every
    /// `probation_stride`-th non-`Interactive` submission diverts to it
    /// as the fleet-level half-open probe. `Interactive` traffic never
    /// probes — its deadlines are too tight to gamble on a recovering
    /// shard. One relaxed load in steady state.
    fn route_for_submit(&self, request: &ScoreRequest) -> usize {
        let shard = self.route(request);
        if !self.shared.probation_active.load(Ordering::Acquire) {
            return shard;
        }
        let Some(policy) = &self.shared.health_policy else {
            return shard;
        };
        if request.level() == ServiceLevel::Interactive {
            return shard;
        }
        let tick = self.shared.probe_counter.fetch_add(1, Ordering::Relaxed);
        if !tick.is_multiple_of(policy.probation_stride) {
            return shard;
        }
        (0..self.shared.shards.len())
            .find(|&candidate| self.shared.health_state(candidate) == HealthState::Probation)
            .unwrap_or(shard)
    }

    /// Routes a synchronous call with failover: on a retryable error
    /// from the routed shard, re-submit once to a surviving ring member
    /// (the key's successor with the failed shard removed), bounded by
    /// the retry token bucket. Without a health policy this adds nothing
    /// to the call — no clone, no extra branch beyond one `None` check.
    fn call_with_failover<T>(
        &self,
        request: ScoreRequest,
        call: impl Fn(&ScoringRuntime, ScoreRequest) -> Result<T>,
    ) -> Result<T> {
        let shard = self.route_for_submit(&request);
        let Some(budget) = &self.shared.retry_budget else {
            return call(&self.shared.shards[shard], request);
        };
        let retry = request.clone();
        let error = match call(&self.shared.shards[shard], request) {
            Ok(outcome) => return Ok(outcome),
            Err(error) => error,
        };
        if !retryable(&error) || self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(error);
        }
        let Some(target) = self.failover_target(&retry, shard) else {
            return Err(error);
        };
        if !budget.try_take(Instant::now()) {
            self.shared.retries_denied.fetch_add(1, Ordering::Relaxed);
            return Err(error);
        }
        self.shared.failover_retries.fetch_add(1, Ordering::Relaxed);
        self.shared.record_event(EventKind::FailoverRetry {
            from_shard: shard as u16,
            to_shard: target as u16,
        });
        call(&self.shared.shards[target], retry)
    }

    /// The failover destination for a request whose routed shard failed:
    /// the key's successor on the current ring with the failed shard
    /// removed (deterministic — the same rerouting quarantining that
    /// shard would cause). `None` when no other shard is routable.
    fn failover_target(&self, request: &ScoreRequest, from: usize) -> Option<usize> {
        let ring = self.shared.ring.read();
        let key = routing_key(request);
        let candidate = ring.shard_for_key(key) as usize;
        if candidate != from {
            // The ring already routes elsewhere (the shard was
            // quarantined between routing and failure).
            return Some(candidate);
        }
        if ring.num_shards() <= 1 {
            return None;
        }
        Some(ring.without_shard(from as u16).shard_for_key(key) as usize)
    }

    /// Routes and submits with backpressure, blocking until the result is
    /// ready (the fleet analogue of [`ScoringRuntime::submit`]). With a
    /// health policy configured, a retryable failure is re-submitted once
    /// to a surviving shard under the retry budget.
    pub fn submit(&self, request: ScoreRequest) -> Result<ScoreOutcome> {
        self.call_with_failover(request, |shard, request| shard.submit(request))
    }

    /// Routes and submits without backpressure (fail-fast
    /// [`ServeError::Saturated`] on a full
    /// shard queue — saturation is a policy outcome and is never retried
    /// elsewhere).
    pub fn try_submit(&self, request: ScoreRequest) -> Result<ScoreOutcome> {
        self.call_with_failover(request, |shard, request| shard.try_submit(request))
    }

    /// Routes and admits a detached submission (with backpressure),
    /// returning the shard's [`ScoreTicket`]. Detached tickets redeem on
    /// their admitting shard; failover applies to the synchronous paths,
    /// where the caller is still present to re-submit.
    pub fn submit_detached(&self, request: ScoreRequest) -> Result<ScoreTicket> {
        let shard = self.route_for_submit(&request);
        self.shared.shards[shard].submit_detached(request)
    }

    /// Routes and admits a detached submission fail-fast.
    pub fn try_submit_detached(&self, request: ScoreRequest) -> Result<ScoreTicket> {
        let shard = self.route_for_submit(&request);
        self.shared.shards[shard].try_submit_detached(request)
    }

    /// Scores a plan at the default envelope (standard level, no tenant),
    /// routed by feature content.
    pub fn score(&self, plan: &QueryPlan) -> Result<ResourceRequest> {
        self.submit(ScoreRequest::from_plan(plan))
            .map(|outcome| outcome.request)
    }

    /// [`score`](Self::score) for a caller that already featurized the
    /// plan.
    pub fn score_features(&self, features: Vec<f64>) -> Result<ResourceRequest> {
        self.submit(ScoreRequest::from_features(features))
            .map(|outcome| outcome.request)
    }

    /// Per-shard queue depths (queued-but-undrained requests).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shared.shards.iter().map(|s| s.queue_depth()).collect()
    }

    /// A point-in-time snapshot of every shard's counters plus the
    /// fleet's steal and resilience accounting.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            shards: self.shared.shards.iter().map(|s| s.stats()).collect(),
            steal_ops: self.shared.steal_ops.load(Ordering::Relaxed),
            stolen_requests: self.shared.stolen_requests.load(Ordering::Relaxed),
            quarantines: self.shared.quarantines.load(Ordering::Relaxed),
            recoveries: self.shared.recoveries.load(Ordering::Relaxed),
            evacuated_requests: self.shared.evacuated_requests.load(Ordering::Relaxed),
            failover_retries: self.shared.failover_retries.load(Ordering::Relaxed),
            retries_denied: self.shared.retries_denied.load(Ordering::Relaxed),
            health: self.health(),
        }
    }

    /// The fleet-level event sink (work steals, quarantines, recoveries,
    /// failover retries, evacuations), when the per-shard template
    /// enables observability. Per-shard events stay in each shard's own
    /// sink ([`ScoringRuntime::observability`]).
    pub fn events(&self) -> Option<&EventSink> {
        self.shared.events.as_ref()
    }

    /// Stops the fleet: background threads first (so no steal, health
    /// transition, or injected fault races the drain — an in-progress
    /// evacuation completes before any shard begins draining), then
    /// every shard — in-flight batches finish, queued requests fail with
    /// [`ServeError::ShutDown`], workers are
    /// joined. Idempotent and safe to call concurrently (each background
    /// thread and worker is joined exactly once; stats are not
    /// double-counted); dropping the handle shuts down too.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.stop_background.store(true, Ordering::Release);
        let handles: Vec<JoinHandle<()>> = lock(&self.background).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        for shard in &self.shared.shards {
            shard.shutdown();
        }
    }
}

impl Drop for ShardedRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_policy_sanitizes() {
        let policy = StealPolicy {
            imbalance_ratio: 0.2,
            min_backlog: 0,
            max_steal: 0,
            interval: Duration::ZERO,
        }
        .sanitized();
        assert!(policy.imbalance_ratio >= 1.0);
        assert_eq!(policy.max_steal, 1);
        let nan = StealPolicy {
            imbalance_ratio: f64::NAN,
            ..StealPolicy::default()
        }
        .sanitized();
        assert!(nan.imbalance_ratio >= 1.0);
    }

    #[test]
    fn fleet_config_builders_and_clamps() {
        let cfg = AutoExecutorConfig::default();
        let fleet = FleetConfig::from_auto_executor(0, &cfg)
            .with_vnodes_per_shard(0)
            .with_ring_seed(99)
            .without_steal();
        assert!(fleet.steal.is_none());
        assert_eq!(fleet.ring_seed, 99);
        let fleet = fleet.sanitized();
        assert_eq!(fleet.shards, 1);
        assert_eq!(fleet.vnodes_per_shard, 1);
        let det = FleetConfig::deterministic(4, &cfg);
        assert!(det.steal.is_none());
        assert!(det.health.is_none());
        assert!(!det.fault_plan.is_active());
        assert_eq!(det.runtime.workers, 1);
        let stealing = FleetConfig::new(2, RuntimeConfig::deterministic(&cfg))
            .with_steal(StealPolicy::default())
            .with_health(HealthPolicy::default())
            .with_fault_plan(FleetFaultPlan::none().with_crashes(1.0, Duration::from_millis(10)));
        assert!(stealing.steal.is_some());
        assert!(stealing.health.is_some());
        assert!(stealing.fault_plan.is_active());
    }

    #[test]
    fn steal_backoff_doubles_to_cap_and_has_a_spin_floor() {
        let base = Duration::from_micros(100);
        // Doubling schedule from the base...
        let mut delay = base;
        let mut schedule = Vec::new();
        for _ in 0..12 {
            delay = next_backoff(delay, base);
            schedule.push(delay);
        }
        assert_eq!(schedule[0], Duration::from_micros(200));
        assert_eq!(schedule[1], Duration::from_micros(400));
        // ...strictly growing until the cap, then pinned there.
        for pair in schedule.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        assert_eq!(*schedule.last().unwrap(), STEAL_BACKOFF_CAP);
        // A zero interval cannot spin: the floor kicks the doubling off.
        let from_zero = next_backoff(Duration::ZERO, Duration::ZERO);
        assert!(from_zero >= STEAL_BACKOFF_FLOOR);
        assert!(next_backoff(from_zero, Duration::ZERO) > from_zero);
        // A base above the cap is honored as the cap.
        let slow = Duration::from_millis(50);
        assert_eq!(next_backoff(slow, slow), slow);
    }

    #[test]
    fn retryable_errors_exclude_policy_outcomes() {
        assert!(retryable(&ServeError::Model("down".into())));
        assert!(retryable(&ServeError::Scoring("crash".into())));
        assert!(retryable(&ServeError::ShutDown));
        assert!(!retryable(&ServeError::Saturated));
        assert!(!retryable(&ServeError::Shed));
        assert!(!retryable(&ServeError::Throttled(crate::tenant::TenantId(
            7
        ))));
    }
}
