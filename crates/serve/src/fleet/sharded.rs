//! The sharded fleet runtime: N shard-local [`ScoringRuntime`]s behind a
//! deterministic consistent-hash router, with bounded cross-shard work
//! stealing.
//!
//! Request flow:
//!
//! ```text
//!  client threads                    shards (config.shards)
//!  ──────────────                    ─────────────────────────────
//!  hash tenant (or features) ──────▶ shard-local ScoringRuntime:
//!  onto the fixed vnode ring          own queues / workers / model
//!                                     cache / breaker / stats / obs
//!                steal coordinator (policy.interval):
//!                deepest backlog ≥ ratio × shallowest?
//!                → migrate EDF-tail Standard/BestEffort
//!                  entries to the shallowest shard
//! ```
//!
//! Three contracts, pinned by `tests/fleet_determinism.rs` and
//! `tests/fleet_stress.rs`:
//!
//! * **Routing is deterministic**: placement is a pure function of
//!   `(ring seed, shard count, tenant)` — never of thread interleaving,
//!   load, or wall-clock (see [`HashRing`]).
//! * **Sharding never changes answers**: scoring is a pure function of
//!   features and model, so which shard (or thief) scores a request can
//!   only change *when* it completes, never the
//!   [`ResourceRequest`].
//!   A 1-shard fleet in deterministic mode is bit-identical to a bare
//!   [`ScoringRuntime`].
//! * **Counters are exact**: every request is counted by exactly one
//!   shard — the one that scored it — so [`FleetStats::aggregate`] totals
//!   equal the sum of per-shard counters with no double-count on stolen
//!   requests.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use ae_engine::plan::QueryPlan;
use ae_obs::{EventKind, EventSink, MetricSource, MetricValue};
use autoexecutor::config::AutoExecutorConfig;
use autoexecutor::optimizer::ResourceRequest;
use autoexecutor::registry::ModelRegistry;

use super::ring::HashRing;
use super::stats::FleetStats;
use crate::config::RuntimeConfig;
use crate::runtime::{lock, ScoreOutcome, ScoreRequest, ScoreTicket, ScoringRuntime};
use crate::Result;

/// Default virtual nodes per shard: enough that per-shard load shares
/// concentrate near `1/N` for the fleet sizes the bench drives (≤ 8).
const DEFAULT_VNODES_PER_SHARD: usize = 128;

/// Default ring seed. Fixed so that two fleets built from the same config
/// route identically without the caller threading a seed through.
const DEFAULT_RING_SEED: u64 = 0x0AE5_E11F_1EE7;

/// When and how much the fleet's steal coordinator rebalances.
///
/// Stealing is **bounded and priority-safe**: at most
/// [`max_steal`](Self::max_steal) requests move per operation, only from
/// the deepest backlog to the shallowest, only when the imbalance test
/// fires, and only `Standard`/`BestEffort` entries from the EDF tail —
/// never `Interactive` (see
/// [`PriorityQueues::steal_least_urgent`](crate::qos)).
#[derive(Debug, Clone)]
pub struct StealPolicy {
    /// Trigger threshold: steal only when the deepest shard's queue depth
    /// is at least `imbalance_ratio × (shallowest depth + 1)`. Clamped to
    /// at least 1.0 (values below would "rebalance" toward imbalance).
    pub imbalance_ratio: f64,
    /// Victim floor: never steal from a shard whose backlog is below this
    /// many requests — shallow queues drain faster than a migration pays
    /// off.
    pub min_backlog: usize,
    /// Upper bound on requests migrated per steal operation (clamped to
    /// at least 1).
    pub max_steal: usize,
    /// Poll interval of the steal coordinator thread.
    pub interval: Duration,
}

impl Default for StealPolicy {
    fn default() -> Self {
        Self {
            imbalance_ratio: 2.0,
            min_backlog: 32,
            max_steal: 16,
            interval: Duration::from_micros(100),
        }
    }
}

impl StealPolicy {
    fn sanitized(mut self) -> Self {
        if self.imbalance_ratio.is_nan() || self.imbalance_ratio < 1.0 {
            self.imbalance_ratio = 1.0;
        }
        self.max_steal = self.max_steal.max(1);
        self
    }
}

/// Configuration of a [`ShardedRuntime`]: how many shards, how they are
/// keyed onto the ring, whether (and how aggressively) to steal, and the
/// per-shard [`RuntimeConfig`] template.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shard-local runtimes (clamped to `1..=u16::MAX`).
    pub shards: usize,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub vnodes_per_shard: usize,
    /// Seed of the vnode ring. Two fleets with equal
    /// `(ring_seed, vnodes_per_shard, shards)` route every tenant
    /// identically.
    pub ring_seed: u64,
    /// Cross-shard work stealing; `None` disables it (required for the
    /// deterministic-mode contract — migration timing is load-dependent).
    pub steal: Option<StealPolicy>,
    /// Template for every shard's [`ScoringRuntime`]. When observability
    /// is configured, each shard registers under
    /// `{prefix}.shard{i}` and the fleet itself under `{prefix}.fleet`.
    pub runtime: RuntimeConfig,
}

impl FleetConfig {
    /// A fleet of `shards` runtimes built from the given per-shard
    /// template, with default ring layout and default work stealing.
    pub fn new(shards: usize, runtime: RuntimeConfig) -> Self {
        Self {
            shards,
            vnodes_per_shard: DEFAULT_VNODES_PER_SHARD,
            ring_seed: DEFAULT_RING_SEED,
            steal: Some(StealPolicy::default()),
            runtime,
        }
    }

    /// Serving defaults per shard ([`RuntimeConfig::from_auto_executor`])
    /// with default stealing.
    pub fn from_auto_executor(shards: usize, config: &AutoExecutorConfig) -> Self {
        Self::new(shards, RuntimeConfig::from_auto_executor(config))
    }

    /// Deterministic fleet: every shard in
    /// [`RuntimeConfig::deterministic`] mode and **no work stealing**, so
    /// completion sets, per-shard placement, and (for a 1-shard fleet)
    /// the full observable behavior are reproducible. Scores are
    /// bit-identical to the sequential rule at any shard count — routing
    /// only decides *where* a request is scored, never its answer.
    pub fn deterministic(shards: usize, config: &AutoExecutorConfig) -> Self {
        Self {
            shards,
            vnodes_per_shard: DEFAULT_VNODES_PER_SHARD,
            ring_seed: DEFAULT_RING_SEED,
            steal: None,
            runtime: RuntimeConfig::deterministic(config),
        }
    }

    /// Overrides the vnode count per shard (clamped to at least 1).
    pub fn with_vnodes_per_shard(mut self, vnodes: usize) -> Self {
        self.vnodes_per_shard = vnodes.max(1);
        self
    }

    /// Overrides the ring seed.
    pub fn with_ring_seed(mut self, seed: u64) -> Self {
        self.ring_seed = seed;
        self
    }

    /// Enables stealing with the given policy.
    pub fn with_steal(mut self, policy: StealPolicy) -> Self {
        self.steal = Some(policy);
        self
    }

    /// Disables work stealing.
    pub fn without_steal(mut self) -> Self {
        self.steal = None;
        self
    }

    /// Replaces the per-shard runtime template.
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    fn sanitized(mut self) -> Self {
        self.shards = self.shards.clamp(1, u16::MAX as usize);
        self.vnodes_per_shard = self.vnodes_per_shard.max(1);
        self.steal = self.steal.map(StealPolicy::sanitized);
        self
    }
}

/// State shared between the fleet handle and the steal coordinator.
struct FleetShared {
    shards: Vec<ScoringRuntime>,
    ring: HashRing,
    steal_ops: AtomicU64,
    stolen_requests: AtomicU64,
    /// Fleet-level event sink (steal operations); present only when the
    /// per-shard template enables observability.
    events: Option<EventSink>,
    stop_stealer: AtomicBool,
}

/// Publishes the fleet's own counters (steal accounting, shard count)
/// under `{prefix}.fleet`; the per-shard counters are published by each
/// shard's own stats source under `{prefix}.shard{i}`.
struct FleetSource {
    prefix: String,
    shared: Weak<FleetShared>,
}

impl MetricSource for FleetSource {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        let Some(shared) = self.shared.upgrade() else {
            return;
        };
        let p = &self.prefix;
        out.push((
            format!("{p}.steal_ops"),
            MetricValue::Counter(shared.steal_ops.load(Ordering::Relaxed)),
        ));
        out.push((
            format!("{p}.stolen_requests"),
            MetricValue::Counter(shared.stolen_requests.load(Ordering::Relaxed)),
        ));
        out.push((
            format!("{p}.shards"),
            MetricValue::Gauge(shared.shards.len() as f64),
        ));
    }
}

/// One pass of the steal coordinator: find the deepest and shallowest
/// backlogs, apply the imbalance test, migrate a bounded batch of
/// least-urgent non-`Interactive` entries. Returns the number of requests
/// migrated (0 when balanced, bounded, or nothing sheddable).
fn rebalance_once(shared: &FleetShared, policy: &StealPolicy) -> usize {
    let depths: Vec<usize> = shared.shards.iter().map(|s| s.queue_depth()).collect();
    let Some((victim, &max_depth)) = depths.iter().enumerate().max_by_key(|&(_, &d)| d) else {
        return 0;
    };
    let Some((thief, &min_depth)) = depths.iter().enumerate().min_by_key(|&(_, &d)| d) else {
        return 0;
    };
    if victim == thief || max_depth < policy.min_backlog {
        return 0;
    }
    if (max_depth as f64) < policy.imbalance_ratio * (min_depth as f64 + 1.0) {
        return 0;
    }
    // Bounded: per-op cap, half the gap (stealing more would overshoot
    // and invite a steal back), and the thief's free queue room.
    let budget = policy
        .max_steal
        .min((max_depth - min_depth) / 2)
        .min(shared.shards[thief].free_queue_capacity());
    if budget == 0 {
        return 0;
    }
    let stolen = shared.shards[victim].steal_backlog(budget);
    if stolen.is_empty() {
        // The victim's whole backlog was Interactive: nothing migratable.
        return 0;
    }
    let count = stolen.len();
    let rejected = shared.shards[thief].inject_backlog(stolen);
    if !rejected.is_empty() {
        // The thief is shutting down: re-home the batch. If the victim is
        // shutting down too, fail the stranded requests — exactly what
        // shutdown does to its own queue.
        let stranded = shared.shards[victim].inject_backlog(rejected);
        if !stranded.is_empty() {
            shared.shards[victim].abandon_backlog(stranded);
        }
        return 0;
    }
    shared.steal_ops.fetch_add(1, Ordering::Relaxed);
    shared
        .stolen_requests
        .fetch_add(count as u64, Ordering::Relaxed);
    if let Some(events) = &shared.events {
        events.record(EventKind::WorkSteal {
            from_shard: victim as u16,
            to_shard: thief as u16,
            count: count.min(u32::MAX as usize) as u32,
        });
    }
    count
}

fn stealer_loop(shared: Arc<FleetShared>, policy: StealPolicy) {
    while !shared.stop_stealer.load(Ordering::Acquire) {
        std::thread::sleep(policy.interval);
        rebalance_once(&shared, &policy);
    }
}

/// A fleet of shard-local [`ScoringRuntime`]s behind a deterministic
/// consistent-hash router, with optional bounded work stealing. See the
/// [module docs](self) for the architecture and contracts.
///
/// Construct with [`ShardedRuntime::new`]; submit from any thread with
/// the same request vocabulary as a single runtime
/// ([`submit`](Self::submit), [`try_submit`](Self::try_submit),
/// [`submit_detached`](Self::submit_detached), …); inspect with
/// [`stats`](Self::stats) (per-shard + aggregate); stop with
/// [`shutdown`](Self::shutdown) (or drop the handle).
pub struct ShardedRuntime {
    shared: Arc<FleetShared>,
    stealer: StdMutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("shards", &self.shared.shards.len())
            .field("queue_depths", &self.queue_depths())
            .finish()
    }
}

impl ShardedRuntime {
    /// Builds the fleet: `config.shards` runtimes over one registry and
    /// model name, a vnode ring keyed by `config.ring_seed`, and (unless
    /// disabled) the steal coordinator thread.
    ///
    /// With observability configured in the per-shard template, shard `i`
    /// registers its metrics under `{prefix}.shard{i}` and the fleet
    /// registers its steal counters under `{prefix}.fleet` — all in the
    /// same registry, no name collisions.
    pub fn new(
        registry: Arc<ModelRegistry>,
        model_name: impl Into<String>,
        config: FleetConfig,
    ) -> Self {
        let config = config.sanitized();
        let model_name = model_name.into();
        let base_obs = config.runtime.observability.clone();
        let shards: Vec<ScoringRuntime> = (0..config.shards)
            .map(|shard| {
                let mut runtime_config = config.runtime.clone();
                if let Some(obs) = &mut runtime_config.observability {
                    obs.prefix = format!("{}.shard{shard}", obs.prefix);
                }
                ScoringRuntime::new(Arc::clone(&registry), model_name.clone(), runtime_config)
            })
            .collect();
        let shared = Arc::new(FleetShared {
            ring: HashRing::new(config.ring_seed, config.vnodes_per_shard, config.shards),
            shards,
            steal_ops: AtomicU64::new(0),
            stolen_requests: AtomicU64::new(0),
            events: base_obs
                .as_ref()
                .map(|obs| EventSink::new(obs.event_capacity)),
            stop_stealer: AtomicBool::new(false),
        });
        if let Some(obs) = &base_obs {
            obs.registry.register_source(Box::new(FleetSource {
                prefix: format!("{}.fleet", obs.prefix),
                shared: Arc::downgrade(&shared),
            }));
        }
        let stealer = config.steal.filter(|_| config.shards > 1).map(|policy| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ae-serve-stealer".to_string())
                .spawn(move || stealer_loop(shared, policy))
                .expect("spawning the fleet steal coordinator")
        });
        Self {
            shared,
            stealer: StdMutex::new(stealer),
        }
    }

    /// Pre-resolves the model on every shard (each shard holds its own
    /// decoded-model cache), so no shard pays the cold-start decode on
    /// its first request.
    pub fn warm(&self) -> Result<()> {
        for shard in &self.shared.shards {
            shard.warm()?;
        }
        Ok(())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Direct handle to one shard's runtime (tests and benchmarks; going
    /// through the shard handle bypasses the router).
    pub fn shard(&self, shard: usize) -> &ScoringRuntime {
        &self.shared.shards[shard]
    }

    /// The fleet's consistent-hash ring.
    pub fn ring(&self) -> &HashRing {
        &self.shared.ring
    }

    /// The shard a request routes to: its tenant's ring position, or —
    /// for untenanted requests — the ring position of its feature
    /// content. Pure function of the request and the fleet config.
    pub fn route(&self, request: &ScoreRequest) -> usize {
        let key = match request.tenant() {
            Some(tenant) => HashRing::key_for_tenant(tenant),
            None => HashRing::key_for_features(request.features()),
        };
        self.shared.ring.shard_for_key(key) as usize
    }

    /// The shard a tenant routes to.
    pub fn shard_for_tenant(&self, tenant: crate::tenant::TenantId) -> usize {
        self.shared.ring.shard_for_tenant(tenant) as usize
    }

    /// Routes and submits with backpressure, blocking until the result is
    /// ready (the fleet analogue of [`ScoringRuntime::submit`]).
    pub fn submit(&self, request: ScoreRequest) -> Result<ScoreOutcome> {
        let shard = self.route(&request);
        self.shared.shards[shard].submit(request)
    }

    /// Routes and submits without backpressure (fail-fast
    /// [`ServeError::Saturated`](crate::ServeError::Saturated) on a full
    /// shard queue).
    pub fn try_submit(&self, request: ScoreRequest) -> Result<ScoreOutcome> {
        let shard = self.route(&request);
        self.shared.shards[shard].try_submit(request)
    }

    /// Routes and admits a detached submission (with backpressure),
    /// returning the shard's [`ScoreTicket`].
    pub fn submit_detached(&self, request: ScoreRequest) -> Result<ScoreTicket> {
        let shard = self.route(&request);
        self.shared.shards[shard].submit_detached(request)
    }

    /// Routes and admits a detached submission fail-fast.
    pub fn try_submit_detached(&self, request: ScoreRequest) -> Result<ScoreTicket> {
        let shard = self.route(&request);
        self.shared.shards[shard].try_submit_detached(request)
    }

    /// Scores a plan at the default envelope (standard level, no tenant),
    /// routed by feature content.
    pub fn score(&self, plan: &QueryPlan) -> Result<ResourceRequest> {
        self.submit(ScoreRequest::from_plan(plan))
            .map(|outcome| outcome.request)
    }

    /// [`score`](Self::score) for a caller that already featurized the
    /// plan.
    pub fn score_features(&self, features: Vec<f64>) -> Result<ResourceRequest> {
        self.submit(ScoreRequest::from_features(features))
            .map(|outcome| outcome.request)
    }

    /// Per-shard queue depths (queued-but-undrained requests).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shared.shards.iter().map(|s| s.queue_depth()).collect()
    }

    /// A point-in-time snapshot of every shard's counters plus the
    /// fleet's steal accounting.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            shards: self.shared.shards.iter().map(|s| s.stats()).collect(),
            steal_ops: self.shared.steal_ops.load(Ordering::Relaxed),
            stolen_requests: self.shared.stolen_requests.load(Ordering::Relaxed),
        }
    }

    /// The fleet-level event sink (work-steal operations), when the
    /// per-shard template enables observability. Per-shard events stay in
    /// each shard's own sink
    /// ([`ScoringRuntime::observability`]).
    pub fn events(&self) -> Option<&EventSink> {
        self.shared.events.as_ref()
    }

    /// Stops the fleet: the steal coordinator first (so no migration
    /// races the drain), then every shard — in-flight batches finish,
    /// queued requests fail with
    /// [`ServeError::ShutDown`](crate::ServeError::ShutDown), workers are
    /// joined. Idempotent; dropping the handle shuts down too.
    pub fn shutdown(&self) {
        self.shared.stop_stealer.store(true, Ordering::Release);
        if let Some(handle) = lock(&self.stealer).take() {
            let _ = handle.join();
        }
        for shard in &self.shared.shards {
            shard.shutdown();
        }
    }
}

impl Drop for ShardedRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_policy_sanitizes() {
        let policy = StealPolicy {
            imbalance_ratio: 0.2,
            min_backlog: 0,
            max_steal: 0,
            interval: Duration::ZERO,
        }
        .sanitized();
        assert!(policy.imbalance_ratio >= 1.0);
        assert_eq!(policy.max_steal, 1);
        let nan = StealPolicy {
            imbalance_ratio: f64::NAN,
            ..StealPolicy::default()
        }
        .sanitized();
        assert!(nan.imbalance_ratio >= 1.0);
    }

    #[test]
    fn fleet_config_builders_and_clamps() {
        let cfg = AutoExecutorConfig::default();
        let fleet = FleetConfig::from_auto_executor(0, &cfg)
            .with_vnodes_per_shard(0)
            .with_ring_seed(99)
            .without_steal();
        assert!(fleet.steal.is_none());
        assert_eq!(fleet.ring_seed, 99);
        let fleet = fleet.sanitized();
        assert_eq!(fleet.shards, 1);
        assert_eq!(fleet.vnodes_per_shard, 1);
        let det = FleetConfig::deterministic(4, &cfg);
        assert!(det.steal.is_none());
        assert_eq!(det.runtime.workers, 1);
        let stealing = FleetConfig::new(2, RuntimeConfig::deterministic(&cfg))
            .with_steal(StealPolicy::default());
        assert!(stealing.steal.is_some());
    }
}
