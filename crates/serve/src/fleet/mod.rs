//! Fleet-scale serving: shard-local runtimes behind a deterministic
//! consistent-hash router, with bounded cross-shard work stealing.
//!
//! One [`ScoringRuntime`](crate::ScoringRuntime) tops out near the
//! throughput of a single admission queue and batcher; the fleet layer
//! (`docs/fleet.md`) scales past that by *sharding the whole runtime*,
//! not just the workers:
//!
//! * [`ShardedRuntime`] owns N complete shard-local runtimes — each with
//!   its own admission queues, micro-batcher, RCU model cache, breaker,
//!   token buckets, stats, and observability namespace — so shards share
//!   no hot state and a fleet maps 1:1 onto N independent nodes.
//! * [`HashRing`] routes by tenant (or feature content) on a fixed
//!   virtual-node ring: placement is a pure function of `(seed, shard
//!   set, key)`, stable under unrelated shard removal.
//! * [`StealPolicy`] bounds the one cross-shard interaction: when a
//!   shard's backlog exceeds the imbalance threshold, the coordinator
//!   migrates least-urgent `Standard`/`BestEffort` entries (never
//!   `Interactive`) to the shallowest shard.
//! * [`FleetStats`] aggregates per-shard counters exactly — every
//!   request is counted by the one shard that scored it.
//! * [`resilience`] makes shard loss a steady-state condition: a
//!   deterministic [`FleetFaultPlan`] injects crashes/stalls/outages, a
//!   per-shard [`HealthState`] machine quarantines failing shards
//!   (successor rerouting + backlog evacuation), a bounded retry budget
//!   rescues failed in-flight requests, and probation re-admits
//!   recovered shards on a trickle of real traffic.

pub mod resilience;
pub mod ring;
pub mod sharded;
pub mod stats;

pub use resilience::{FleetFaultPlan, HealthPolicy, HealthState, InducedFault};
pub use ring::HashRing;
pub use sharded::{FleetConfig, ShardedRuntime, StealPolicy};
pub use stats::FleetStats;
