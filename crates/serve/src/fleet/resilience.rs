//! Fleet resilience: deterministic shard fault injection, the per-shard
//! health state machine, and the cross-shard failover retry budget.
//!
//! The engine made *queries* survive executor loss (`ae_engine::faults`);
//! this module gives the fleet the same end-to-end story for *shards*.
//! Three pieces, all opt-in (see `docs/resilience.md`):
//!
//! * [`FleetFaultPlan`] — a deterministic chaos schedule mirroring the
//!   engine's `FaultPlan` contract: each fault kind draws its arrival
//!   times from its own shard-index-keyed [`rand::derive_stream_seed`]
//!   stream, so a shard's faults never depend on how many other shards
//!   exist, and the same `(plan, shard count)` always yields the same
//!   [`schedule`](FleetFaultPlan::schedule). [`FleetFaultPlan::none`] is
//!   provably inert: no injector thread spawns and every hot-path check
//!   is one untaken branch, keeping the zero-fault fleet bit-identical.
//! * [`HealthPolicy`] / [`HealthState`] — how the fleet's health monitor
//!   turns a shard's error rate, breaker state, and drain progress into
//!   the `Healthy → Suspect → Quarantined → Probation` machine that
//!   drives failover and recovery (implemented in
//!   [`super::sharded`]).
//! * `RetryBudget` (crate-internal) — a token bucket bounding cross-shard re-submission
//!   of failed requests, so a dying shard cannot amplify its own load
//!   onto survivors.

use std::sync::Mutex as StdMutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{derive_stream_seed, Rng, SeedableRng};

/// Salt of the shard-crash arrival stream (`"CRASH"`).
const CRASH_STREAM_SALT: u64 = 0x43_52_41_53_48;
/// Salt of the shard-stall arrival stream (`"STALL"`).
const STALL_STREAM_SALT: u64 = 0x53_54_41_4C_4C;
/// Salt of the model-outage arrival stream (`"OUTAGE"`).
const OUTAGE_STREAM_SALT: u64 = 0x4F_55_54_41_47_45;

/// A fault induced on one shard's runtime (chaos injection).
///
/// Faults change *failure behavior*, never answers: a faulted shard
/// either errors, slows down, or loses its model path — requests that do
/// complete still score through the same pure functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InducedFault {
    /// The shard fails every scoring attempt outright (hard error on the
    /// model *and* fallback path), as if its process died.
    Crash,
    /// The shard stalls: every drained batch is delayed by this much
    /// before scoring, starving its queue (a straggler shard).
    Stall(Duration),
    /// The shard's model path fails (registry/decode), exercising the
    /// per-shard breaker and degraded mode where configured.
    ModelOutage,
}

// The induced-fault word in `runtime::Shared`: kind in the low 2 bits,
// the stall delay (µs) in the high 62. Zero means no fault, so the
// inactive hot path is a single `load == 0` branch.
const KIND_BITS: u64 = 0b11;
const KIND_CRASH: u64 = 1;
const KIND_STALL: u64 = 2;
const KIND_OUTAGE: u64 = 3;

/// Packs an optional fault into the runtime's atomic fault word.
pub(crate) fn encode_fault(fault: Option<InducedFault>) -> u64 {
    match fault {
        None => 0,
        Some(InducedFault::Crash) => KIND_CRASH,
        Some(InducedFault::Stall(delay)) => {
            let micros = u64::try_from(delay.as_micros())
                .unwrap_or(u64::MAX)
                .min(u64::MAX >> 2);
            (micros << 2) | KIND_STALL
        }
        Some(InducedFault::ModelOutage) => KIND_OUTAGE,
    }
}

/// Unpacks the runtime's atomic fault word.
pub(crate) fn decode_fault(word: u64) -> Option<InducedFault> {
    match word & KIND_BITS {
        KIND_CRASH => Some(InducedFault::Crash),
        KIND_STALL => Some(InducedFault::Stall(Duration::from_micros(word >> 2))),
        KIND_OUTAGE => Some(InducedFault::ModelOutage),
        _ => None,
    }
}

/// A deterministic shard-fault schedule for a `ShardedRuntime`
/// ([`super::ShardedRuntime`](super::sharded::ShardedRuntime)), mirroring the engine's `FaultPlan`
/// contract: per-entity seed streams, exponential inter-arrivals, and a
/// provably inert [`none`](Self::none).
///
/// Rates are events per shard-**second** (serving chaos runs on a
/// much shorter clock than the engine's per-minute query simulation).
/// Each fault occupies the shard for its duration; the next arrival of
/// the same kind is drawn after the previous one clears, so one kind's
/// windows never overlap on one shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetFaultPlan {
    /// Base seed; each `(kind, shard)` pair derives its own stream.
    pub seed: u64,
    /// Shard-crash arrivals per shard-second (0 disables).
    pub crash_rate_per_sec: f64,
    /// How long a crashed shard stays dead before reviving.
    pub crash_duration: Duration,
    /// Shard-stall arrivals per shard-second (0 disables).
    pub stall_rate_per_sec: f64,
    /// How long a stall window lasts.
    pub stall_duration: Duration,
    /// Per-batch delay injected while a shard is stalled.
    pub stall_delay: Duration,
    /// Model-outage arrivals per shard-second (0 disables).
    pub outage_rate_per_sec: f64,
    /// How long a model outage lasts.
    pub outage_duration: Duration,
    /// Schedule horizon: no fault *starts* at or after this offset from
    /// fleet start (in-progress faults still run to completion).
    pub horizon: Duration,
}

impl Default for FleetFaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FleetFaultPlan {
    /// No faults: every rate zero. The fleet spawns no injector thread
    /// and behaves bit-identically to one built without a plan (pinned
    /// by `tests/fleet_resilience.rs`).
    pub fn none() -> Self {
        Self {
            seed: 0,
            crash_rate_per_sec: 0.0,
            crash_duration: Duration::from_millis(250),
            stall_rate_per_sec: 0.0,
            stall_duration: Duration::from_millis(250),
            stall_delay: Duration::from_millis(5),
            outage_rate_per_sec: 0.0,
            outage_duration: Duration::from_millis(250),
            horizon: Duration::from_secs(60),
        }
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables shard crashes at `rate_per_sec`, each lasting `duration`.
    pub fn with_crashes(mut self, rate_per_sec: f64, duration: Duration) -> Self {
        self.crash_rate_per_sec = rate_per_sec;
        self.crash_duration = duration;
        self
    }

    /// Enables shard stalls at `rate_per_sec`: for `duration`, every
    /// drained batch is delayed by `delay`.
    pub fn with_stalls(mut self, rate_per_sec: f64, duration: Duration, delay: Duration) -> Self {
        self.stall_rate_per_sec = rate_per_sec;
        self.stall_duration = duration;
        self.stall_delay = delay;
        self
    }

    /// Enables model outages at `rate_per_sec`, each lasting `duration`.
    pub fn with_outages(mut self, rate_per_sec: f64, duration: Duration) -> Self {
        self.outage_rate_per_sec = rate_per_sec;
        self.outage_duration = duration;
        self
    }

    /// Sets the schedule horizon.
    pub fn with_horizon(mut self, horizon: Duration) -> Self {
        self.horizon = horizon;
        self
    }

    /// True when any fault kind has a positive rate — the condition for
    /// spawning the fleet's injector thread.
    pub fn is_active(&self) -> bool {
        self.crash_rate_per_sec > 0.0
            || self.stall_rate_per_sec > 0.0
            || self.outage_rate_per_sec > 0.0
    }

    /// Validates the plan: rates must be finite and non-negative.
    pub fn validate(&self) -> std::result::Result<(), String> {
        for (name, rate) in [
            ("crash", self.crash_rate_per_sec),
            ("stall", self.stall_rate_per_sec),
            ("outage", self.outage_rate_per_sec),
        ] {
            if !rate.is_finite() || rate < 0.0 {
                return Err(format!("{name} rate must be finite and >= 0, got {rate}"));
            }
        }
        Ok(())
    }

    /// Clamps invalid rates to zero (the fleet-config sanitizer; callers
    /// that want an error use [`validate`](Self::validate)).
    pub(crate) fn sanitized(mut self) -> Self {
        for rate in [
            &mut self.crash_rate_per_sec,
            &mut self.stall_rate_per_sec,
            &mut self.outage_rate_per_sec,
        ] {
            if !rate.is_finite() || *rate < 0.0 {
                *rate = 0.0;
            }
        }
        self
    }

    /// The full fault schedule for a fleet of `shards` shards: a pure
    /// function of `(plan, shards)`, sorted by start offset.
    ///
    /// Each `(kind, shard)` pair draws from its own derived stream, so a
    /// shard's schedule is identical in a 2-shard and an 8-shard fleet —
    /// the same per-entity independence the engine's executor lifetimes
    /// have.
    pub fn schedule(&self, shards: usize) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        for shard in 0..shards {
            self.stream_events(
                &mut events,
                shard,
                CRASH_STREAM_SALT,
                self.crash_rate_per_sec,
                self.crash_duration,
                InducedFault::Crash,
            );
            self.stream_events(
                &mut events,
                shard,
                STALL_STREAM_SALT,
                self.stall_rate_per_sec,
                self.stall_duration,
                InducedFault::Stall(self.stall_delay),
            );
            self.stream_events(
                &mut events,
                shard,
                OUTAGE_STREAM_SALT,
                self.outage_rate_per_sec,
                self.outage_duration,
                InducedFault::ModelOutage,
            );
        }
        events.sort_by_key(|e| (e.at, e.shard));
        events
    }

    /// Appends one `(kind, shard)` stream's events: exponential
    /// inter-arrivals at `rate`, each window `duration` long, the next
    /// arrival drawn after the previous window clears.
    fn stream_events(
        &self,
        out: &mut Vec<FaultEvent>,
        shard: usize,
        salt: u64,
        rate: f64,
        duration: Duration,
        fault: InducedFault,
    ) {
        if rate <= 0.0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(derive_stream_seed(self.seed ^ salt, shard as u64));
        let horizon = self.horizon.as_secs_f64();
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / rate;
            if !t.is_finite() || t >= horizon {
                return;
            }
            let at = Duration::from_secs_f64(t);
            out.push(FaultEvent {
                at,
                until: at + duration,
                shard,
                fault,
            });
            t += duration.as_secs_f64();
        }
    }
}

/// One scheduled fault window: `fault` strikes `shard` at offset `at`
/// from fleet start and clears at `until`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Start offset from fleet start.
    pub at: Duration,
    /// Clear offset from fleet start.
    pub until: Duration,
    /// Target shard index.
    pub shard: usize,
    /// What strikes the shard.
    pub fault: InducedFault,
}

/// One shard's position in the fleet health state machine.
///
/// ```text
/// Healthy ──bad check──▶ Suspect ──bad check──▶ Quarantined
///    ▲                      │                        │ hold elapses
///    │                   good check                  ▼
///    │◀── clean trickle ── Probation ◀───────────────┘
///              (errors re-quarantine)
/// ```
///
/// `Healthy`/`Suspect` shards are on the routing ring; `Quarantined`/
/// `Probation` shards are off it (probation shards receive only the
/// diverted trickle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum HealthState {
    /// Serving normally; on the ring.
    #[default]
    Healthy = 0,
    /// One bad health check observed; still on the ring, one more bad
    /// check quarantines.
    Suspect = 1,
    /// Off the ring: backlog evacuated, traffic rerouted to successors.
    Quarantined = 2,
    /// Fleet-level half-open: off the ring, but receiving a trickle of
    /// diverted real traffic to prove recovery.
    Probation = 3,
}

impl HealthState {
    pub(crate) fn from_u8(value: u8) -> Self {
        match value {
            1 => HealthState::Suspect,
            2 => HealthState::Quarantined,
            3 => HealthState::Probation,
            _ => HealthState::Healthy,
        }
    }

    /// True when the shard is a member of the routing ring.
    pub fn is_routable(self) -> bool {
        matches!(self, HealthState::Healthy | HealthState::Suspect)
    }

    /// Lower-case name (metric/JSON label).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Quarantined => "quarantined",
            HealthState::Probation => "probation",
        }
    }
}

/// How the fleet health monitor detects, quarantines, and re-admits
/// shards. Attach with
/// [`FleetConfig::with_health`](super::FleetConfig::with_health); `None`
/// (the default) spawns no monitor and changes nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthPolicy {
    /// Monitor sampling period. Each check inspects every shard's error
    /// delta, breaker state, and drain progress since the last check.
    pub check_interval: Duration,
    /// A check is *bad* when `errors / (errors + completed)` over the
    /// window reaches this, with at least
    /// [`min_window_events`](Self::min_window_events) observations.
    pub error_rate_threshold: f64,
    /// Event floor before the error rate counts (one unlucky request
    /// must not condemn an idle shard).
    pub min_window_events: u64,
    /// Drain-stall watchdog: a check is bad when the shard has at least
    /// this many queued requests and completed nothing, for
    /// [`stall_checks`](Self::stall_checks) consecutive checks.
    pub stall_depth: usize,
    /// Consecutive no-progress checks that count as one bad check.
    pub stall_checks: u32,
    /// Time a quarantined shard sits out before probation begins.
    pub quarantine_hold: Duration,
    /// During probation, every `probation_stride`-th non-`Interactive`
    /// submission is diverted to the probation shard (the fleet-level
    /// half-open trickle).
    pub probation_stride: u64,
    /// Clean completions the probation shard must serve before
    /// re-admission.
    pub probation_min_completions: u64,
    /// Consecutive clean checks (no errors) before re-admission.
    pub probation_checks: u32,
    /// Failover retry token bucket capacity (0 disables cross-shard
    /// retries).
    pub retry_budget: u32,
    /// Failover retry token refill rate.
    pub retry_refill_per_sec: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            check_interval: Duration::from_millis(5),
            error_rate_threshold: 0.5,
            min_window_events: 8,
            stall_depth: 1,
            stall_checks: 3,
            quarantine_hold: Duration::from_millis(50),
            probation_stride: 4,
            probation_min_completions: 8,
            probation_checks: 2,
            retry_budget: 64,
            retry_refill_per_sec: 32.0,
        }
    }
}

impl HealthPolicy {
    /// Overrides the monitor sampling period.
    pub fn with_check_interval(mut self, interval: Duration) -> Self {
        self.check_interval = interval;
        self
    }

    /// Overrides the bad-check error-rate threshold and its event floor.
    pub fn with_error_rate(mut self, threshold: f64, min_window_events: u64) -> Self {
        self.error_rate_threshold = threshold;
        self.min_window_events = min_window_events;
        self
    }

    /// Overrides the drain-stall watchdog.
    pub fn with_stall_watchdog(mut self, depth: usize, checks: u32) -> Self {
        self.stall_depth = depth;
        self.stall_checks = checks;
        self
    }

    /// Overrides the quarantine hold time.
    pub fn with_quarantine_hold(mut self, hold: Duration) -> Self {
        self.quarantine_hold = hold;
        self
    }

    /// Overrides the probation trickle and re-admission bar.
    pub fn with_probation(mut self, stride: u64, min_completions: u64, checks: u32) -> Self {
        self.probation_stride = stride;
        self.probation_min_completions = min_completions;
        self.probation_checks = checks;
        self
    }

    /// Overrides the failover retry budget.
    pub fn with_retry_budget(mut self, capacity: u32, refill_per_sec: f64) -> Self {
        self.retry_budget = capacity;
        self.retry_refill_per_sec = refill_per_sec;
        self
    }

    pub(crate) fn sanitized(mut self) -> Self {
        if self.check_interval < Duration::from_micros(100) {
            self.check_interval = Duration::from_micros(100);
        }
        if self.error_rate_threshold.is_nan() || self.error_rate_threshold <= 0.0 {
            self.error_rate_threshold = 1.0;
        }
        self.error_rate_threshold = self.error_rate_threshold.min(1.0);
        self.stall_checks = self.stall_checks.max(1);
        self.probation_stride = self.probation_stride.max(1);
        self.probation_checks = self.probation_checks.max(1);
        if !self.retry_refill_per_sec.is_finite() || self.retry_refill_per_sec < 0.0 {
            self.retry_refill_per_sec = 0.0;
        }
        self
    }
}

/// Token bucket bounding cross-shard failover retries: `capacity` burst
/// tokens, refilled continuously. A retry takes one token; with none
/// available the original error propagates (counted in
/// [`FleetStats::retries_denied`](super::FleetStats::retries_denied)).
pub(crate) struct RetryBudget {
    capacity: f64,
    refill_per_sec: f64,
    state: StdMutex<(f64, Instant)>,
}

impl RetryBudget {
    pub(crate) fn new(capacity: u32, refill_per_sec: f64, now: Instant) -> Self {
        let capacity = f64::from(capacity);
        Self {
            capacity,
            refill_per_sec,
            state: StdMutex::new((capacity, now)),
        }
    }

    /// Takes one token if available, refilling lazily from elapsed time.
    pub(crate) fn try_take(&self, now: Instant) -> bool {
        let mut guard = self
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let (tokens, last) = *guard;
        let refilled = (tokens
            + now.saturating_duration_since(last).as_secs_f64() * self.refill_per_sec)
            .min(self.capacity);
        if refilled >= 1.0 {
            *guard = (refilled - 1.0, now);
            true
        } else {
            *guard = (refilled, now);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_word_roundtrips() {
        for fault in [
            None,
            Some(InducedFault::Crash),
            Some(InducedFault::ModelOutage),
            Some(InducedFault::Stall(Duration::ZERO)),
            Some(InducedFault::Stall(Duration::from_micros(1))),
            Some(InducedFault::Stall(Duration::from_secs(3600))),
        ] {
            assert_eq!(decode_fault(encode_fault(fault)), fault);
        }
        assert_eq!(encode_fault(None), 0, "inactive word must be zero");
        // An over-wide stall delay clamps instead of corrupting the kind.
        let word = encode_fault(Some(InducedFault::Stall(Duration::MAX)));
        assert!(matches!(
            decode_fault(word),
            Some(InducedFault::Stall(d)) if d > Duration::from_secs(3600)
        ));
    }

    #[test]
    fn none_plan_is_inert_and_empty() {
        let plan = FleetFaultPlan::none();
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
        assert!(plan.schedule(8).is_empty());
        assert_eq!(FleetFaultPlan::default(), plan);
    }

    #[test]
    fn schedule_is_deterministic_and_per_shard_independent() {
        let plan = FleetFaultPlan::none()
            .with_seed(42)
            .with_crashes(2.0, Duration::from_millis(100))
            .with_stalls(1.0, Duration::from_millis(50), Duration::from_millis(2))
            .with_outages(0.5, Duration::from_millis(200))
            .with_horizon(Duration::from_secs(10));
        assert!(plan.is_active());
        let a = plan.schedule(4);
        let b = plan.schedule(4);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same (plan, shards) must yield the same schedule");
        // Per-shard streams: shard 2's events are identical whether the
        // fleet has 4 or 8 shards.
        let wide = plan.schedule(8);
        let shard2 = |events: &[FaultEvent]| -> Vec<FaultEvent> {
            events.iter().copied().filter(|e| e.shard == 2).collect()
        };
        assert_eq!(shard2(&a), shard2(&wide));
        // Ordered by start, inside the horizon, windows well-formed.
        for pair in a.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for event in &a {
            assert!(event.at < plan.horizon);
            assert!(event.until > event.at);
        }
        // A different seed draws a different schedule.
        assert_ne!(plan.with_seed(43).schedule(4), a);
    }

    #[test]
    fn same_kind_windows_never_overlap_on_one_shard() {
        let plan = FleetFaultPlan::none()
            .with_seed(7)
            .with_crashes(20.0, Duration::from_millis(80))
            .with_horizon(Duration::from_secs(5));
        let events = plan.schedule(2);
        for shard in 0..2 {
            let mine: Vec<&FaultEvent> = events.iter().filter(|e| e.shard == shard).collect();
            for pair in mine.windows(2) {
                assert!(
                    pair[1].at >= pair[0].until,
                    "crash windows overlap on shard {shard}"
                );
            }
        }
    }

    #[test]
    fn validate_and_sanitize_reject_bad_rates() {
        let bad = FleetFaultPlan::none().with_crashes(f64::NAN, Duration::from_millis(1));
        assert!(bad.validate().is_err());
        assert_eq!(bad.sanitized().crash_rate_per_sec, 0.0);
        let negative = FleetFaultPlan::none().with_outages(-1.0, Duration::from_millis(1));
        assert!(negative.validate().is_err());
        assert!(!negative.sanitized().is_active());
    }

    #[test]
    fn health_policy_sanitizes() {
        let policy = HealthPolicy {
            check_interval: Duration::ZERO,
            error_rate_threshold: f64::NAN,
            probation_stride: 0,
            probation_checks: 0,
            stall_checks: 0,
            retry_refill_per_sec: f64::NEG_INFINITY,
            ..HealthPolicy::default()
        }
        .sanitized();
        assert!(policy.check_interval > Duration::ZERO);
        assert!((0.0..=1.0).contains(&policy.error_rate_threshold));
        assert!(policy.error_rate_threshold > 0.0);
        assert_eq!(policy.probation_stride, 1);
        assert_eq!(policy.probation_checks, 1);
        assert_eq!(policy.stall_checks, 1);
        assert_eq!(policy.retry_refill_per_sec, 0.0);
    }

    #[test]
    fn health_state_machine_labels() {
        for (value, state) in [
            (0u8, HealthState::Healthy),
            (1, HealthState::Suspect),
            (2, HealthState::Quarantined),
            (3, HealthState::Probation),
        ] {
            assert_eq!(HealthState::from_u8(value), state);
            assert_eq!(state as u8, value);
        }
        assert!(HealthState::Healthy.is_routable());
        assert!(HealthState::Suspect.is_routable());
        assert!(!HealthState::Quarantined.is_routable());
        assert!(!HealthState::Probation.is_routable());
        assert_eq!(HealthState::default(), HealthState::Healthy);
        assert_eq!(HealthState::Quarantined.name(), "quarantined");
    }

    #[test]
    fn retry_budget_bounds_and_refills() {
        let t0 = Instant::now();
        let budget = RetryBudget::new(2, 10.0, t0);
        assert!(budget.try_take(t0));
        assert!(budget.try_take(t0));
        assert!(!budget.try_take(t0), "burst capacity must bound retries");
        // 100 ms at 10 tokens/s refills one token.
        let later = t0 + Duration::from_millis(100);
        assert!(budget.try_take(later));
        assert!(!budget.try_take(later));
        // Refill never exceeds capacity.
        let much_later = t0 + Duration::from_secs(3600);
        assert!(budget.try_take(much_later));
        assert!(budget.try_take(much_later));
        assert!(!budget.try_take(much_later));
        // Zero capacity disables retries entirely.
        let none = RetryBudget::new(0, 100.0, t0);
        assert!(!none.try_take(t0 + Duration::from_secs(10)));
    }
}
