//! Fleet-level statistics: per-shard snapshots plus exact aggregation.
//!
//! Every counter in the fleet lives in exactly one shard's
//! [`StatsInner`](crate::stats)-backed [`RuntimeStats`] — the fleet layer
//! adds only the two steal counters it owns itself. Aggregation is
//! therefore pure summation ([`RuntimeStats::merge_from`]), and the
//! invariant the test battery pins is *exactness*: fleet totals equal the
//! sum of per-shard counters, with stolen requests counted once, by the
//! shard that scored them (`tests/fleet_stress.rs`).

use super::resilience::HealthState;
use crate::stats::RuntimeStats;

/// A point-in-time snapshot of every shard's counters plus the fleet's
/// own steal accounting, as returned by
/// [`ShardedRuntime::stats`](super::ShardedRuntime::stats).
///
/// The consistency contract is the per-shard one (see
/// [`crate::stats`]): each shard snapshot may be torn across counters
/// while requests are in flight, and is exact once that shard is
/// quiescent. `steal_ops`/`stolen_requests` are read after the shard
/// snapshots, so a quiescent fleet's snapshot is exact end to end.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// One counter snapshot per shard, indexed by shard id.
    pub shards: Vec<RuntimeStats>,
    /// Steal operations the coordinator executed (each migrates ≥ 1
    /// request).
    pub steal_ops: u64,
    /// Queued requests migrated across shards by work stealing. A stolen
    /// request's *completion* is counted by the shard that scored it, so
    /// this is a flow counter, not part of any completion total.
    pub stolen_requests: u64,
    /// Shard quarantine transitions (a shard re-quarantined after a
    /// failed probation counts again).
    pub quarantines: u64,
    /// Probationary re-admissions back onto the routing ring.
    pub recoveries: u64,
    /// Queued requests evacuated out of quarantined shards into
    /// survivors. A flow counter like
    /// [`stolen_requests`](Self::stolen_requests): each evacuee's
    /// completion is counted once, by the shard that scored it.
    pub evacuated_requests: u64,
    /// Cross-shard failover retry *attempts* (each consumed one budget
    /// token). A rescued retry leaves one error on the failed shard and
    /// one completion on the target, so for a quiescent fleet
    /// `aggregate().errors == client-visible errors + failover_retries`.
    pub failover_retries: u64,
    /// Retryable failures that could not be retried because the token
    /// bucket was empty (the original error propagated to the client).
    pub retries_denied: u64,
    /// Every shard's health state at snapshot time, indexed by shard id.
    /// All [`HealthState::Healthy`] when no health policy is configured.
    pub health: Vec<HealthState>,
}

impl FleetStats {
    /// Number of shards in the snapshot.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's counters.
    pub fn shard(&self, shard: usize) -> &RuntimeStats {
        &self.shards[shard]
    }

    /// The fleet-wide totals: every shard's counters summed field-by-field
    /// via [`RuntimeStats::merge_from`]. Because each request is counted
    /// by exactly one shard (stolen requests by the shard that scored
    /// them), `aggregate().completed` equals the number of requests the
    /// fleet answered successfully — the exactness `tests/fleet_stress.rs`
    /// proves under concurrent load.
    pub fn aggregate(&self) -> RuntimeStats {
        let mut total = RuntimeStats::default();
        for shard in &self.shards {
            total.merge_from(shard);
        }
        total
    }

    /// Counter-wise difference against an earlier snapshot of the same
    /// fleet: each shard diffed via [`RuntimeStats::delta_since`]
    /// (saturating, per the per-runtime contract), steal counters diffed
    /// saturating too.
    ///
    /// # Panics
    ///
    /// Panics when the snapshots disagree on shard count — deltas are
    /// only meaningful between snapshots of one fleet.
    pub fn delta_since(&self, before: &FleetStats) -> FleetStats {
        assert_eq!(
            self.shards.len(),
            before.shards.len(),
            "fleet delta requires snapshots of the same fleet"
        );
        FleetStats {
            shards: self
                .shards
                .iter()
                .zip(&before.shards)
                .map(|(now, then)| now.delta_since(then))
                .collect(),
            steal_ops: self.steal_ops.saturating_sub(before.steal_ops),
            stolen_requests: self.stolen_requests.saturating_sub(before.stolen_requests),
            quarantines: self.quarantines.saturating_sub(before.quarantines),
            recoveries: self.recoveries.saturating_sub(before.recoveries),
            evacuated_requests: self
                .evacuated_requests
                .saturating_sub(before.evacuated_requests),
            failover_retries: self
                .failover_retries
                .saturating_sub(before.failover_retries),
            retries_denied: self.retries_denied.saturating_sub(before.retries_denied),
            // Health is a point-in-time state, not a counter: a delta
            // carries the *current* (newer) states.
            health: self.health.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::ServiceLevel;
    use crate::stats::LevelStats;

    fn shard_stats(base: u64) -> RuntimeStats {
        RuntimeStats {
            completed: base,
            inline_scored: base / 2,
            batches: base / 3,
            dropped: 1,
            errors: 2,
            levels: std::array::from_fn(|i| LevelStats {
                completed: base + i as u64,
                deadline_misses: i as u64,
                shed: 1,
            }),
            demoted: 3,
            throttled: 4,
            degraded: 5,
            breaker_trips: base % 3,
            batch_size_histogram: vec![base, 0, 1],
        }
    }

    #[test]
    fn aggregate_sums_every_shard_exactly() {
        let fleet = FleetStats {
            shards: vec![shard_stats(10), shard_stats(20), shard_stats(31)],
            steal_ops: 2,
            stolen_requests: 9,
            ..FleetStats::default()
        };
        let total = fleet.aggregate();
        assert_eq!(total.completed, 10 + 20 + 31);
        assert_eq!(total.inline_scored, 5 + 10 + 15);
        assert_eq!(total.batches, 3 + 6 + 10);
        assert_eq!(total.dropped, 3);
        assert_eq!(total.errors, 6);
        assert_eq!(total.demoted, 9);
        assert_eq!(total.throttled, 12);
        assert_eq!(total.degraded, 15);
        // Breaker trips are per-runtime; the fleet total is their sum.
        assert_eq!(total.breaker_trips, 1 + 2 + 1);
        for level in ServiceLevel::ALL {
            let i = level.index() as u64;
            assert_eq!(total.level(level).completed, (10 + i) + (20 + i) + (31 + i));
            assert_eq!(total.level(level).deadline_misses, 3 * i);
            assert_eq!(total.level(level).shed, 3);
        }
        assert_eq!(total.batch_size_histogram, vec![61, 0, 3]);
    }

    #[test]
    fn delta_is_per_shard_and_saturating() {
        let before = FleetStats {
            shards: vec![shard_stats(10), shard_stats(20)],
            steal_ops: 1,
            stolen_requests: 4,
            quarantines: 1,
            recoveries: 0,
            evacuated_requests: 5,
            failover_retries: 2,
            retries_denied: 0,
            health: vec![HealthState::Healthy, HealthState::Quarantined],
        };
        let after = FleetStats {
            shards: vec![shard_stats(15), shard_stats(20)],
            steal_ops: 3,
            stolen_requests: 10,
            quarantines: 2,
            recoveries: 1,
            evacuated_requests: 12,
            failover_retries: 5,
            retries_denied: 1,
            health: vec![HealthState::Healthy, HealthState::Probation],
        };
        let delta = after.delta_since(&before);
        assert_eq!(delta.shard(0).completed, 5);
        assert_eq!(delta.shard(1).completed, 0);
        assert_eq!(delta.steal_ops, 2);
        assert_eq!(delta.stolen_requests, 6);
        assert_eq!(delta.quarantines, 1);
        assert_eq!(delta.recoveries, 1);
        assert_eq!(delta.evacuated_requests, 7);
        assert_eq!(delta.failover_retries, 3);
        assert_eq!(delta.retries_denied, 1);
        // A delta carries the newer snapshot's point-in-time health.
        assert_eq!(
            delta.health,
            vec![HealthState::Healthy, HealthState::Probation]
        );
        // The aggregate of a delta equals the delta of the aggregates
        // (both are sums of the same per-shard differences).
        assert_eq!(
            delta.aggregate().completed,
            after
                .aggregate()
                .completed
                .saturating_sub(before.aggregate().completed)
        );
        // Saturation instead of wraparound on torn counters.
        let torn = before.delta_since(&after);
        assert_eq!(torn.shard(0).completed, 0);
        assert_eq!(torn.steal_ops, 0);
    }

    #[test]
    #[should_panic(expected = "same fleet")]
    fn delta_rejects_mismatched_shard_counts() {
        let two = FleetStats {
            shards: vec![RuntimeStats::default(), RuntimeStats::default()],
            ..FleetStats::default()
        };
        let one = FleetStats {
            shards: vec![RuntimeStats::default()],
            ..FleetStats::default()
        };
        let _ = two.delta_since(&one);
    }
}
