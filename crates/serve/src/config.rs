//! Configuration of the scoring runtime.

use std::time::Duration;

use ae_ppm::risk::PreemptionRisk;
use ae_ppm::selection::SelectionObjective;
use autoexecutor::config::AutoExecutorConfig;

use crate::breaker::BreakerConfig;
use crate::obs::ObsConfig;
use crate::qos::QosConfig;

/// Tuning knobs of a [`crate::ScoringRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of batching worker threads. `0` is allowed (requests queue
    /// until shutdown — only useful for tests exercising backpressure).
    pub workers: usize,
    /// Maximum requests scored per forest call.
    pub max_batch: usize,
    /// After the first request of a batch arrives, how long a worker tops
    /// the batch up before scoring. `Duration::ZERO` drains whatever is
    /// queued immediately (pure FIFO micro-batching).
    pub batch_window: Duration,
    /// Bound on the admission queue. Blocking submitters wait when it is
    /// full ([`crate::ScoringRuntime::score`]); non-blocking submitters are
    /// rejected with [`crate::ServeError::Saturated`]
    /// ([`crate::ScoringRuntime::try_score`]).
    pub queue_capacity: usize,
    /// Score on the submitting thread while the system is lightly loaded,
    /// skipping the queue round-trip so an idle runtime serves single
    /// queries at sequential-rule latency.
    pub inline_when_idle: bool,
    /// How many requests may be in flight (inline + queued + batching)
    /// before submitters stop inlining and overflow into the batching
    /// queue. Inline scoring skips the queue round-trip entirely (the slot
    /// is claimed with a CAS; the model lookup takes brief read locks) and
    /// is cheapest while cores are available; the queue exists to absorb
    /// and amortize load beyond that.
    pub inline_max_in_flight: usize,
    /// Selection objective applied to every predicted curve.
    pub objective: SelectionObjective,
    /// Candidate executor counts evaluated per query.
    pub candidate_counts: Vec<usize>,
    /// Service-level semantics: per-level deadline budgets, drain weights,
    /// pricing targets, and the optional per-tenant fairness policy.
    pub qos: QosConfig,
    /// Optional circuit breaker for degraded-mode serving: on repeated
    /// model failures (or scoring-budget breaches) the runtime falls back
    /// to a heuristic sizing rule instead of erroring every request, then
    /// probes its way back (see [`crate::breaker`]). `None` (the default)
    /// disables the breaker — model errors surface to callers unchanged.
    pub breaker: Option<BreakerConfig>,
    /// Optional preemption-risk model applied before selection (the same
    /// adjustment as [`autoexecutor::config::AutoExecutorConfig::preemption_risk`]):
    /// predicted curves become expected runtime under revocation. `None`
    /// keeps scoring bit-identical to the risk-unaware path.
    pub preemption_risk: Option<PreemptionRisk>,
    /// Optional observability (see [`crate::obs`]): a metrics registry to
    /// publish counters/latency histograms into plus a bounded typed
    /// event sink. `None` (the default) makes every instrumentation site
    /// a single untaken branch — outcomes and stats are bit-identical
    /// either way (pinned by `tests/obs.rs`).
    pub observability: Option<ObsConfig>,
}

impl RuntimeConfig {
    /// Concurrent serving defaults derived from a pipeline configuration:
    /// one worker per available core (at most 8), batches of up to 32, a
    /// 100 µs batch window, and a 1024-deep admission queue.
    pub fn from_auto_executor(config: &AutoExecutorConfig) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            workers: cores.clamp(1, 8),
            max_batch: 32,
            batch_window: Duration::from_micros(100),
            queue_capacity: 1024,
            inline_when_idle: true,
            inline_max_in_flight: (2 * cores).max(6),
            objective: config.objective,
            candidate_counts: config.candidate_counts(),
            qos: QosConfig::default(),
            breaker: None,
            preemption_risk: config.preemption_risk,
            observability: None,
        }
    }

    /// Deterministic mode: a single worker draining the queue strictly FIFO
    /// with no batch window and no inline shortcut. Output is bit-identical
    /// to the sequential `AutoExecutorRule` (pinned by the regression test),
    /// and side effects (stats, completion order) are reproducible.
    pub fn deterministic(config: &AutoExecutorConfig) -> Self {
        Self {
            workers: 1,
            max_batch: 32,
            batch_window: Duration::ZERO,
            queue_capacity: 1024,
            inline_when_idle: false,
            inline_max_in_flight: 0,
            objective: config.objective,
            candidate_counts: config.candidate_counts(),
            // Default QoS, fairness disabled: single-level traffic drains
            // strictly FIFO and stays bit-identical to the sequential rule.
            qos: QosConfig::default(),
            // No breaker: degraded-mode fallback would make outcomes depend
            // on model availability and timing.
            breaker: None,
            preemption_risk: config.preemption_risk,
            // Observability stays opt-in even here: it never changes
            // outcomes, only records them.
            observability: None,
        }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the maximum batch size (clamped to at least 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Overrides the batch window.
    pub fn with_batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Overrides the admission-queue capacity (clamped to at least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Enables or disables the inline-when-idle shortcut.
    pub fn with_inline_when_idle(mut self, inline: bool) -> Self {
        self.inline_when_idle = inline;
        self
    }

    /// Overrides the in-flight bound below which submitters score inline.
    pub fn with_inline_max_in_flight(mut self, limit: usize) -> Self {
        self.inline_max_in_flight = limit;
        self
    }

    /// Overrides the QoS configuration (service-level budgets, drain
    /// weights, pricing targets, tenant fairness).
    pub fn with_qos(mut self, qos: QosConfig) -> Self {
        self.qos = qos;
        self
    }

    /// Enables the degraded-mode circuit breaker.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Sets the preemption-risk model applied before selection.
    pub fn with_preemption_risk(mut self, risk: PreemptionRisk) -> Self {
        self.preemption_risk = Some(risk);
        self
    }

    /// Enables observability: metric registration, the stats source, the
    /// per-level latency histograms, and the typed event sink.
    pub fn with_observability(mut self, obs: ObsConfig) -> Self {
        self.observability = Some(obs);
        self
    }

    /// Clamps nonsensical values (zero batch size or queue capacity).
    pub(crate) fn sanitized(mut self) -> Self {
        self.max_batch = self.max_batch.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = AutoExecutorConfig::default();
        let rt = RuntimeConfig::from_auto_executor(&cfg);
        assert!(rt.workers >= 1);
        assert!(rt.max_batch >= 1);
        assert!(rt.queue_capacity >= 1);
        assert!(rt.inline_when_idle);
        assert_eq!(rt.candidate_counts, cfg.candidate_counts());
    }

    #[test]
    fn deterministic_mode_is_single_worker_fifo() {
        let cfg = AutoExecutorConfig::default();
        let rt = RuntimeConfig::deterministic(&cfg);
        assert_eq!(rt.workers, 1);
        assert_eq!(rt.batch_window, Duration::ZERO);
        assert!(!rt.inline_when_idle);
    }

    #[test]
    fn builders_clamp_and_override() {
        let cfg = AutoExecutorConfig::default();
        let rt = RuntimeConfig::deterministic(&cfg)
            .with_workers(3)
            .with_max_batch(0)
            .with_queue_capacity(0)
            .with_batch_window(Duration::from_millis(1))
            .with_inline_when_idle(true);
        assert_eq!(rt.workers, 3);
        assert_eq!(rt.max_batch, 1);
        assert_eq!(rt.queue_capacity, 1);
        assert!(rt.inline_when_idle);
        let s = rt.sanitized();
        assert_eq!(s.max_batch, 1);
    }
}
