//! Multi-tenant fairness: per-tenant token buckets over the admission path.
//!
//! A serving tier shared by many tenants must not let one tenant's flood
//! starve everyone else's promises. The governor here is a classic
//! token-bucket rate limiter keyed by [`TenantId`]: each tenant accrues
//! tokens at `rate_qps` up to a burst ceiling, every admitted request
//! spends one token, and a request arriving with an empty bucket is either
//! **demoted** to [`BestEffort`](crate::qos::ServiceLevel::BestEffort)
//! (default — the flood keeps flowing but becomes the first thing shed
//! under saturation, so in-rate tenants keep their service levels) or
//! **rejected** outright with
//! [`ServeError::Throttled`](crate::ServeError::Throttled).
//!
//! The governor polices *admission class*, never *answers*: a demoted
//! request is scored exactly like any other, it just waits (and sheds)
//! like best-effort traffic. Deterministic-mode configurations leave
//! fairness disabled ([`QosConfig::fairness`](crate::qos::QosConfig) is
//! `None`), so the PR 2/3 bit-identical serving contract is untouched.

use std::collections::HashMap;
use std::sync::Mutex as StdMutex;
use std::time::Instant;

/// Identifies the tenant a request is accounted against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// What happens to a request whose tenant is over its token-bucket rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThrottleAction {
    /// Admit the request demoted to `BestEffort`: it still completes under
    /// light load but is the first thing shed under saturation.
    Demote,
    /// Reject the request with [`ServeError::Throttled`](crate::ServeError::Throttled).
    Reject,
}

/// Per-tenant token-bucket policy (uniform across tenants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Sustained per-tenant admission rate in requests per second; tokens
    /// refill continuously at this rate. A rate of `0` makes the bucket a
    /// pure burst allowance — useful for deterministic tests.
    pub rate_qps: f64,
    /// Bucket capacity: how many requests a tenant may burst above the
    /// sustained rate. Buckets start full.
    pub burst: f64,
    /// Disposition of over-rate requests.
    pub on_violation: ThrottleAction,
}

impl TenantPolicy {
    /// A demote-on-violation policy (the default disposition).
    pub fn demote(rate_qps: f64, burst: f64) -> Self {
        Self {
            rate_qps,
            burst,
            on_violation: ThrottleAction::Demote,
        }
    }

    /// A reject-on-violation policy.
    pub fn reject(rate_qps: f64, burst: f64) -> Self {
        Self {
            rate_qps,
            burst,
            on_violation: ThrottleAction::Reject,
        }
    }
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// In rate: admit at the requested level.
    Granted,
    /// Over rate, policy demotes: admit at `BestEffort`.
    Demoted,
    /// Over rate, policy rejects: fail with `Throttled`.
    Rejected,
}

/// One tenant's bucket state.
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// The shared fairness governor: a token bucket per observed tenant.
///
/// State is a mutex-guarded map — admission already serializes briefly on
/// the queue lock, and the critical section here is a few float ops. The
/// map is bounded: once it holds [`SWEEP_THRESHOLD`] tenants, entries
/// idle long enough to have refilled to a full burst are swept — a fresh
/// bucket is indistinguishable from a fully-refilled one, so eviction
/// never changes an admission decision. (A `rate_qps` of `0` disables
/// refill and therefore sweeping; that degenerate policy is meant for
/// deterministic tests, not long-lived high-cardinality deployments.)
pub(crate) struct TenantGovernor {
    policy: TenantPolicy,
    buckets: StdMutex<HashMap<TenantId, Bucket>>,
}

/// Map size at which [`TenantGovernor::admit`] sweeps refilled-idle
/// buckets before inserting new ones.
const SWEEP_THRESHOLD: usize = 4096;

impl TenantGovernor {
    pub(crate) fn new(policy: TenantPolicy) -> Self {
        Self {
            policy,
            buckets: StdMutex::new(HashMap::new()),
        }
    }

    /// Charges one request to `tenant`'s bucket at time `now` and returns
    /// the admission decision.
    pub(crate) fn admit(&self, tenant: TenantId, now: Instant) -> Admission {
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if buckets.len() >= SWEEP_THRESHOLD && self.policy.rate_qps > 0.0 {
            // Entries idle past a full refill period carry no state a
            // fresh bucket would not: drop them to bound the map.
            let full_refill =
                std::time::Duration::from_secs_f64(self.policy.burst / self.policy.rate_qps);
            buckets.retain(|_, bucket| {
                now.saturating_duration_since(bucket.last_refill) < full_refill
            });
        }
        let bucket = buckets.entry(tenant).or_insert(Bucket {
            tokens: self.policy.burst,
            last_refill: now,
        });
        // Continuous refill since the last charge; a clock that appears to
        // move backwards (now < last_refill across threads) refills zero.
        let elapsed = now.saturating_duration_since(bucket.last_refill);
        bucket.tokens =
            (bucket.tokens + elapsed.as_secs_f64() * self.policy.rate_qps).min(self.policy.burst);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Admission::Granted
        } else {
            match self.policy.on_violation {
                ThrottleAction::Demote => Admission::Demoted,
                ThrottleAction::Reject => Admission::Rejected,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_is_granted_then_policy_applies() {
        let governor = TenantGovernor::new(TenantPolicy::demote(0.0, 3.0));
        let now = Instant::now();
        let tenant = TenantId(7);
        for _ in 0..3 {
            assert_eq!(governor.admit(tenant, now), Admission::Granted);
        }
        assert_eq!(governor.admit(tenant, now), Admission::Demoted);

        let governor = TenantGovernor::new(TenantPolicy::reject(0.0, 1.0));
        assert_eq!(governor.admit(tenant, now), Admission::Granted);
        assert_eq!(governor.admit(tenant, now), Admission::Rejected);
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let governor = TenantGovernor::new(TenantPolicy::demote(0.0, 1.0));
        let now = Instant::now();
        assert_eq!(governor.admit(TenantId(1), now), Admission::Granted);
        assert_eq!(governor.admit(TenantId(1), now), Admission::Demoted);
        // A different tenant's bucket is untouched by tenant 1's flood.
        assert_eq!(governor.admit(TenantId(2), now), Admission::Granted);
    }

    #[test]
    fn idle_refilled_buckets_are_swept_to_bound_the_map() {
        let governor = TenantGovernor::new(TenantPolicy::demote(10.0, 2.0));
        let start = Instant::now();
        // Fill the map to the sweep threshold with distinct tenants.
        for id in 0..super::SWEEP_THRESHOLD as u64 {
            governor.admit(TenantId(id), start);
        }
        assert_eq!(
            governor.buckets.lock().unwrap().len(),
            super::SWEEP_THRESHOLD
        );
        // Long past a full refill (burst/rate = 200 ms), a new tenant's
        // admission sweeps every idle entry; admissions still behave as if
        // the swept buckets were fully refilled.
        let later = start + Duration::from_secs(5);
        assert_eq!(
            governor.admit(TenantId(u64::MAX), later),
            Admission::Granted
        );
        assert_eq!(governor.buckets.lock().unwrap().len(), 1);
        assert_eq!(governor.admit(TenantId(0), later), Admission::Granted);
    }

    #[test]
    fn tokens_refill_at_the_sustained_rate_up_to_burst() {
        let governor = TenantGovernor::new(TenantPolicy::demote(10.0, 2.0));
        let start = Instant::now();
        let tenant = TenantId(3);
        assert_eq!(governor.admit(tenant, start), Admission::Granted);
        assert_eq!(governor.admit(tenant, start), Admission::Granted);
        assert_eq!(governor.admit(tenant, start), Admission::Demoted);
        // 100 ms at 10 qps refills one token.
        let later = start + Duration::from_millis(100);
        assert_eq!(governor.admit(tenant, later), Admission::Granted);
        assert_eq!(governor.admit(tenant, later), Admission::Demoted);
        // A long idle period refills to the burst ceiling, not beyond.
        let much_later = start + Duration::from_secs(60);
        assert_eq!(governor.admit(tenant, much_later), Admission::Granted);
        assert_eq!(governor.admit(tenant, much_later), Admission::Granted);
        assert_eq!(governor.admit(tenant, much_later), Admission::Demoted);
    }
}
