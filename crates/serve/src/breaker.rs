//! Degraded-mode serving: a scoring watchdog and circuit breaker with a
//! heuristic fallback sizing rule.
//!
//! The serving path depends on a registered, decodable model. When that
//! dependency fails — the model is missing, corrupt, or scoring blows its
//! latency budget — a naive runtime turns every request into an error and
//! pushes the outage onto every client at once. The breaker here converts
//! that failure mode into *degraded service*: requests are still answered,
//! but by a cheap heuristic sizing rule built from the plan's own feature
//! tail, and the outcome is marked [`degraded`](crate::ScoreOutcome::degraded)
//! so callers (and [`RuntimeStats`](crate::RuntimeStats)) can see it.
//!
//! Classic three-state circuit breaker:
//!
//! * **Closed** — the model path is used; consecutive failures are counted.
//!   Reaching [`BreakerConfig::failure_threshold`] trips the breaker.
//! * **Open** — the model path is skipped entirely (no registry access, no
//!   decode attempts) until [`BreakerConfig::cooldown`] has elapsed.
//! * **Half-open** — after the cooldown, exactly one request is let through
//!   as a *probe*; concurrent requests keep taking the fallback. A probe
//!   success closes the breaker, a probe failure re-opens it for another
//!   cooldown.
//!
//! The optional [`BreakerConfig::scoring_budget`] is the watchdog: a model
//! scoring call that takes longer than the budget *counts as a failure*
//! (the answer, being correct, is still returned — only sustained
//! slowness trips the breaker and moves traffic to the fallback).
//!
//! Breakers are disabled by default
//! ([`RuntimeConfig::breaker`](crate::RuntimeConfig::breaker) is `None`),
//! so existing deployments and the deterministic-mode guarantee are
//! untouched unless opted in.

use std::sync::Mutex as StdMutex;
use std::time::{Duration, Instant};

use ae_ppm::model::{AmdahlPpm, Ppm};
use ae_ppm::selection::SelectionObjective;
use autoexecutor::optimizer::ResourceRequest;

use crate::{Result, ServeError};

/// Circuit-breaker tuning for the degraded-mode serving path. Attach one
/// to a runtime with
/// [`RuntimeConfig::with_breaker`](crate::RuntimeConfig::with_breaker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive model-path failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before letting a half-open probe
    /// through.
    pub cooldown: Duration,
    /// Optional watchdog budget for one model scoring call (single or
    /// batch): calls exceeding it count as breaker failures even though
    /// their results are still used.
    pub scoring_budget: Option<Duration>,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown: Duration::from_millis(250),
            scoring_budget: None,
        }
    }
}

impl BreakerConfig {
    /// Overrides the consecutive-failure threshold (clamped to at least 1).
    pub fn with_failure_threshold(mut self, threshold: u32) -> Self {
        self.failure_threshold = threshold.max(1);
        self
    }

    /// Overrides the open-state cooldown.
    pub fn with_cooldown(mut self, cooldown: Duration) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Sets the scoring watchdog budget.
    pub fn with_scoring_budget(mut self, budget: Duration) -> Self {
        self.scoring_budget = Some(budget);
        self
    }
}

#[derive(Debug, Clone, Copy)]
enum State {
    /// Model path in use; counts consecutive failures.
    Closed { failures: u32 },
    /// Model path skipped until the cooldown deadline.
    Open { until: Instant },
    /// One probe is in flight; everyone else still takes the fallback.
    HalfOpen,
}

/// The runtime-internal breaker state machine. All transitions happen under
/// one short mutex; scoring itself never runs under the lock.
pub(crate) struct Breaker {
    config: BreakerConfig,
    state: StdMutex<State>,
}

impl Breaker {
    pub(crate) fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: StdMutex::new(State::Closed { failures: 0 }),
        }
    }

    /// Decides whether the caller may use the model path right now. An
    /// `Open` breaker past its cooldown transitions to `HalfOpen` and
    /// admits the caller as the probe.
    pub(crate) fn allow_model(&self, now: Instant) -> bool {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        match *state {
            State::Closed { .. } => true,
            State::Open { until } => {
                if now >= until {
                    *state = State::HalfOpen;
                    true
                } else {
                    false
                }
            }
            State::HalfOpen => false,
        }
    }

    /// A model-path call succeeded (within budget): the breaker closes and
    /// the failure count resets. Returns `true` when this success
    /// *recovered* the breaker — it was not already closed (a half-open
    /// probe succeeded, or a success raced a trip) — so callers can emit
    /// a recovery event exactly once per outage.
    pub(crate) fn record_success(&self) -> bool {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let recovered = !matches!(*state, State::Closed { .. });
        *state = State::Closed { failures: 0 };
        recovered
    }

    /// A model-path call failed (or blew the watchdog budget). Returns
    /// `true` when this failure *trips* the breaker open — either the
    /// closed-state threshold was reached or a half-open probe failed.
    pub(crate) fn record_failure(&self, now: Instant) -> bool {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        match *state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.config.failure_threshold {
                    *state = State::Open {
                        until: now + self.config.cooldown,
                    };
                    true
                } else {
                    *state = State::Closed { failures };
                    false
                }
            }
            State::HalfOpen => {
                *state = State::Open {
                    until: now + self.config.cooldown,
                };
                true
            }
            // A stale failure racing a reopened breaker: keep it open.
            State::Open { .. } => false,
        }
    }

    /// Read-only health signal for the fleet monitor: true while the
    /// breaker holds the model path open (cooldown not yet elapsed).
    /// Unlike [`allow_model`](Self::allow_model) this never transitions
    /// the state, so observing health cannot consume the half-open probe.
    pub(crate) fn is_open(&self, now: Instant) -> bool {
        let state = self
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        match *state {
            State::Open { until } => now < until,
            State::Closed { .. } | State::HalfOpen => false,
        }
    }

    /// True when `elapsed` exceeds the configured scoring budget.
    pub(crate) fn over_budget(&self, elapsed: Duration) -> bool {
        self.config
            .scoring_budget
            .is_some_and(|budget| elapsed > budget)
    }
}

/// The heuristic fallback sizing rule: a [`ResourceRequest`] built without
/// the model, from the plan-shape tail of the full feature vector
/// (`NumOps`, `MaxDepth`, `NumInputs`, `TotalInputBytes`,
/// `TotalRowsProcessed` — the last five columns of
/// [`autoexecutor::features::full_feature_names`]).
///
/// The rule estimates single-executor work from the input volume (a flat
/// per-byte/per-row throughput plus a per-operator overhead) and a serial
/// fraction from how deep the plan is relative to its operator count, then
/// shapes them into an [`AmdahlPpm`] and runs the *same* selection
/// objective the model path uses. The answer is deliberately crude — the
/// point is a sane, finite executor count under model outage, not
/// accuracy — but it scales with the query like the real curves do.
pub(crate) fn heuristic_request(
    features: &[f64],
    objective: SelectionObjective,
    candidate_counts: &[usize],
) -> Result<ResourceRequest> {
    if features.len() < 5 {
        return Err(ServeError::Scoring(format!(
            "heuristic fallback needs the 5 plan-shape tail features, got {} columns",
            features.len()
        )));
    }
    let tail = &features[features.len() - 5..];
    let num_ops = tail[0].max(1.0);
    let max_depth = tail[1].max(1.0);
    let bytes = tail[3].max(0.0);
    let rows = tail[4].max(0.0);

    // Single-executor work estimate: 128 MB/s scan, 2M rows/s processing,
    // 100 ms of fixed overhead per operator; floored at one second.
    let work = (bytes / 128e6 + rows / 2e6 + 0.1 * num_ops).max(1.0);
    // Deep, narrow plans are mostly chains (serial); wide plans parallelize.
    let serial_fraction = (max_depth / num_ops).clamp(0.02, 0.5);
    let ppm = Ppm::Amdahl(AmdahlPpm::new(
        serial_fraction * work,
        (1.0 - serial_fraction) * work,
    ));
    let predicted_curve = ppm.predict_curve(candidate_counts);
    let executors = objective
        .select(&predicted_curve)
        .ok_or_else(|| ServeError::Scoring("empty candidate range".into()))?;
    Ok(ResourceRequest {
        executors,
        predicted_ppm: ppm,
        predicted_curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> Instant {
        Instant::now()
    }

    #[test]
    fn trips_after_threshold_and_recovers_via_probe() {
        let breaker = Breaker::new(
            BreakerConfig::default()
                .with_failure_threshold(2)
                .with_cooldown(Duration::from_millis(1)),
        );
        let t0 = now();
        assert!(breaker.allow_model(t0));
        assert!(!breaker.record_failure(t0), "first failure must not trip");
        assert!(breaker.allow_model(t0));
        assert!(breaker.record_failure(t0), "threshold failure trips");
        // Open: model path denied until the cooldown elapses.
        assert!(!breaker.allow_model(t0));
        let after = t0 + Duration::from_millis(2);
        // Past cooldown: exactly one probe is admitted.
        assert!(breaker.allow_model(after));
        assert!(!breaker.allow_model(after), "second caller is not a probe");
        assert!(breaker.record_success(), "probe success is a recovery");
        assert!(breaker.allow_model(after), "probe success closes");
    }

    #[test]
    fn failed_probe_reopens() {
        let breaker = Breaker::new(
            BreakerConfig::default()
                .with_failure_threshold(1)
                .with_cooldown(Duration::from_millis(1)),
        );
        let t0 = now();
        assert!(breaker.record_failure(t0));
        let after = t0 + Duration::from_millis(2);
        assert!(breaker.allow_model(after));
        assert!(breaker.record_failure(after), "probe failure re-trips");
        assert!(!breaker.allow_model(after));
    }

    #[test]
    fn success_resets_the_failure_count() {
        let breaker = Breaker::new(BreakerConfig::default().with_failure_threshold(2));
        let t0 = now();
        assert!(!breaker.record_failure(t0));
        assert!(
            !breaker.record_success(),
            "closed-state success is not a recovery"
        );
        assert!(
            !breaker.record_failure(t0),
            "count must restart after a success"
        );
    }

    #[test]
    fn is_open_reports_without_consuming_the_probe() {
        let breaker = Breaker::new(
            BreakerConfig::default()
                .with_failure_threshold(1)
                .with_cooldown(Duration::from_millis(5)),
        );
        let t0 = now();
        assert!(!breaker.is_open(t0));
        assert!(breaker.record_failure(t0));
        assert!(breaker.is_open(t0));
        let after = t0 + Duration::from_millis(6);
        // Past the cooldown the health probe reports closed but must not
        // transition to HalfOpen: the real probe slot stays available.
        assert!(!breaker.is_open(after));
        assert!(
            breaker.allow_model(after),
            "health check consumed the probe"
        );
    }

    #[test]
    fn watchdog_budget_detection() {
        let no_budget = Breaker::new(BreakerConfig::default());
        assert!(!no_budget.over_budget(Duration::from_secs(3600)));
        let tight =
            Breaker::new(BreakerConfig::default().with_scoring_budget(Duration::from_millis(5)));
        assert!(!tight.over_budget(Duration::from_millis(5)));
        assert!(tight.over_budget(Duration::from_millis(6)));
    }

    #[test]
    fn heuristic_scales_with_input_volume() {
        let counts: Vec<usize> = (1..=48).collect();
        // 19 columns like the real feature vector; only the tail matters.
        let mut small = vec![0.0; 19];
        let tail = small.len() - 5;
        small[tail] = 10.0; // NumOps
        small[tail + 1] = 4.0; // MaxDepth
        small[tail + 2] = 2.0; // NumInputs
        small[tail + 3] = 64e6; // TotalInputBytes
        small[tail + 4] = 1e5; // TotalRowsProcessed
        let mut big = small.clone();
        big[tail + 3] = 512e9;
        big[tail + 4] = 4e9;
        let small_req = heuristic_request(&small, SelectionObjective::Elbow, &counts).unwrap();
        let big_req = heuristic_request(&big, SelectionObjective::Elbow, &counts).unwrap();
        assert!(small_req.executors >= 1 && small_req.executors <= 48);
        assert!(big_req.executors >= small_req.executors);
        assert_eq!(big_req.predicted_curve.len(), 48);
        assert!(big_req.predicted_curve.iter().all(|&(_, t)| t.is_finite()));
    }

    #[test]
    fn heuristic_rejects_truncated_features() {
        assert!(matches!(
            heuristic_request(&[1.0, 2.0], SelectionObjective::Elbow, &[1, 2]),
            Err(ServeError::Scoring(_))
        ));
    }
}
