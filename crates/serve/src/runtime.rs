//! The concurrent batched, QoS-aware scoring runtime.
//!
//! Request flow:
//!
//! ```text
//!  client threads                     workers (config.workers)
//!  ──────────────                     ────────────────────────
//!  featurize plan                     wait for first request
//!  tenant token bucket                top batch up (batch_window, max_batch)
//!  (grant / demote / reject)          WRR across levels, EDF within level
//!  idle? → score inline ─────┐        lay rows out in one FeatureMatrix
//!  else: per-level EDF queue ┼──────▶ score_feature_batch → fulfill each
//!  (full? shed BestEffort)   │        record deadline hit/miss per level
//!  wait on completion ◀──────┘
//! ```
//!
//! Scoring is pure (no RNG, no shared mutable state), so results are a
//! function of the submitted plan and the registered model only — batching,
//! worker count, service level, and scheduling order cannot change any
//! individual [`ResourceRequest`]. QoS affects *when* a request is scored
//! (its queueing delay, and whether it survives saturation), never
//! *answers*.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ae_engine::plan::QueryPlan;
use ae_ml::matrix::FeatureMatrix;
use ae_ml::portable::PortableModel;
use ae_obs::{EventKind, MetricSource, MetricValue};
use autoexecutor::features::{featurize_plan, full_feature_names};
use autoexecutor::optimizer::ResourceRequest;
use autoexecutor::registry::ModelRegistry;
use autoexecutor::scoring;
use autoexecutor::training::ParameterModel;
use parking_lot::RwLock;

use crate::breaker::{heuristic_request, Breaker};
use crate::config::RuntimeConfig;
use crate::fleet::resilience::{decode_fault, encode_fault, InducedFault};
use crate::obs::RuntimeObs;
use crate::qos::{self, PriceQuote, PriorityQueues, QueuedRequest, ServiceLevel};
use crate::stats::{RuntimeStats, StatsInner};
use crate::tenant::{Admission, TenantGovernor, TenantId};
use crate::{Result, ServeError};

/// Budgets are clamped so `Instant + budget` can never overflow (a year is
/// "forever" for a scoring call).
const MAX_DEADLINE_BUDGET: Duration = Duration::from_secs(365 * 24 * 3600);

/// Locks a std mutex, recovering from poisoning (a panicking worker must
/// not wedge every client).
pub(crate) fn lock<T>(mutex: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// One scoring request with its QoS envelope: what to score, at which
/// service level, on whose behalf, and under what deadline.
///
/// Build one with [`from_plan`](Self::from_plan) (featurizes the plan) or
/// [`from_features`](Self::from_features), then refine with the `with_*`
/// builders. The default envelope is [`ServiceLevel::Standard`], no tenant
/// (exempt from fairness policing), and the level's configured deadline
/// budget.
#[derive(Debug, Clone)]
pub struct ScoreRequest {
    features: Vec<f64>,
    level: ServiceLevel,
    tenant: Option<TenantId>,
    deadline_budget: Option<Duration>,
}

impl ScoreRequest {
    /// A request for an optimized plan (featurized here, like
    /// [`ScoringRuntime::score`]).
    pub fn from_plan(plan: &QueryPlan) -> Self {
        Self::from_features(featurize_plan(plan))
    }

    /// A request for an already-featurized plan.
    pub fn from_features(features: Vec<f64>) -> Self {
        Self {
            features,
            level: ServiceLevel::Standard,
            tenant: None,
            deadline_budget: None,
        }
    }

    /// Sets the service level.
    pub fn with_level(mut self, level: ServiceLevel) -> Self {
        self.level = level;
        self
    }

    /// Attributes the request to a tenant (subject to the fairness policy).
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Overrides the level's deadline budget for this request.
    /// `Duration::ZERO` is honored literally: the request is admitted and
    /// scored, and counts as a deadline miss.
    pub fn with_deadline_budget(mut self, budget: Duration) -> Self {
        self.deadline_budget = Some(budget);
        self
    }

    /// The requested service level.
    pub fn level(&self) -> ServiceLevel {
        self.level
    }

    /// The tenant the request is attributed to, if any. The fleet router
    /// keys consistent hashing on this.
    pub fn tenant(&self) -> Option<TenantId> {
        self.tenant
    }

    /// The featurized plan (the fleet router hashes untenanted requests
    /// by feature content so placement stays deterministic).
    pub(crate) fn features(&self) -> &[f64] {
        &self.features
    }
}

/// The answer to a [`ScoreRequest`]: the scored resource request plus its
/// QoS disposition.
#[derive(Debug, Clone)]
pub struct ScoreOutcome {
    /// The scored plan: executor count, predicted PPM, predicted curve —
    /// identical to what [`ScoringRuntime::score`] returns, regardless of
    /// level.
    pub request: ResourceRequest,
    /// The level the request was *served* at (differs from the requested
    /// level only when the tenant governor demoted it).
    pub level: ServiceLevel,
    /// True when the request was fulfilled after its deadline.
    pub missed_deadline: bool,
    /// Admission-to-fulfillment latency as observed by the runtime
    /// (queueing delay + batching + scoring; excludes client-side
    /// featurization).
    pub latency: Duration,
    /// True when the answer came from the heuristic fallback because the
    /// circuit breaker had the model path open (degraded mode). Always
    /// false when [`crate::RuntimeConfig::breaker`] is `None`.
    pub degraded: bool,
    /// Pricing inputs captured from the runtime's QoS config so
    /// [`quote`](Self::quote) can derive the price lazily.
    quote_targets: [f64; ServiceLevel::COUNT],
    quote_unit_price: f64,
}

impl ScoreOutcome {
    /// The price of this query's promise at the served level, derived on
    /// demand from the predicted curve (the plain `score`/`try_score`
    /// path never pays for pricing it discards). `None` only when the
    /// predicted curve is empty (never for a successfully scored request
    /// in practice).
    pub fn quote(&self) -> Option<PriceQuote> {
        qos::price_quote_parts(
            &self.request.predicted_curve,
            self.level,
            &self.quote_targets,
            self.quote_unit_price,
        )
    }
}

/// What a completion slot carries back to the submitter.
pub(crate) struct Scored {
    pub(crate) request: ResourceRequest,
    pub(crate) missed_deadline: bool,
    pub(crate) latency: Duration,
    pub(crate) degraded: bool,
}

/// A one-shot completion slot the submitting thread blocks on.
#[derive(Default)]
pub(crate) struct Completion {
    slot: StdMutex<Option<Result<Scored>>>,
    ready: Condvar,
}

impl Completion {
    pub(crate) fn fulfill(&self, result: Result<Scored>) {
        *lock(&self.slot) = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Scored> {
        let mut guard = lock(&self.slot);
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }

    /// Like [`wait`](Self::wait), but gives up after `timeout` and returns
    /// `None` — the slot stays armed, so a later wait can still redeem it.
    fn wait_timeout(&self, timeout: Duration) -> Option<Result<Scored>> {
        let deadline = Instant::now() + timeout.min(MAX_DEADLINE_BUDGET);
        let mut guard = lock(&self.slot);
        loop {
            if let Some(result) = guard.take() {
                return Some(result);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _timed_out) = self
                .ready
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|poison| poison.into_inner());
            guard = next;
        }
    }
}

/// Builds the client-facing outcome, capturing the pricing inputs so the
/// quote can be derived lazily via [`ScoreOutcome::quote`].
fn make_outcome(shared: &Shared, scored: Scored, level: ServiceLevel) -> ScoreOutcome {
    ScoreOutcome {
        request: scored.request,
        level,
        missed_deadline: scored.missed_deadline,
        latency: scored.latency,
        degraded: scored.degraded,
        quote_targets: shared.config.qos.slowdown_targets,
        quote_unit_price: shared.config.qos.unit_price,
    }
}

/// A pending detached submission, returned by
/// [`ScoringRuntime::submit_detached`] /
/// [`ScoringRuntime::try_submit_detached`]: the request is admitted and
/// will be scored whether or not the ticket is redeemed; [`wait`](Self::wait)
/// blocks until the result is ready and returns the [`ScoreOutcome`].
/// Dropping a ticket abandons the *result*, not the request.
#[must_use = "the scored result is only observable by waiting on the ticket"]
pub struct ScoreTicket {
    shared: Arc<Shared>,
    done: Arc<Completion>,
    level: ServiceLevel,
}

impl ScoreTicket {
    /// The service level the request was admitted at (after any demotion).
    pub fn level(&self) -> ServiceLevel {
        self.level
    }

    /// Blocks until the request is fulfilled and returns its outcome.
    pub fn wait(self) -> Result<ScoreOutcome> {
        let scored = self.done.wait()?;
        Ok(make_outcome(&self.shared, scored, self.level))
    }

    /// Like [`wait`](Self::wait), but gives up after `timeout`: the outer
    /// `Err` hands the (still-live) ticket back so the caller can retry,
    /// do other work, or drop it. The request itself is unaffected — it
    /// will still be scored, and a later `wait` still redeems the result.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> std::result::Result<Result<ScoreOutcome>, ScoreTicket> {
        match self.done.wait_timeout(timeout) {
            Some(result) => Ok(result.map(|scored| make_outcome(&self.shared, scored, self.level))),
            None => Err(self),
        }
    }
}

impl std::fmt::Debug for ScoreTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoreTicket")
            .field("level", &self.level)
            .finish()
    }
}

/// State shared between the handle, submitters, and workers.
struct Shared {
    registry: Arc<ModelRegistry>,
    model_name: String,
    config: RuntimeConfig,
    feature_width: usize,
    /// The per-level EDF admission queues (WRR-drained; see
    /// [`crate::qos::PriorityQueues`]).
    queues: StdMutex<PriorityQueues>,
    /// Signalled when a request is enqueued (workers and batch top-up wait
    /// on it) and on shutdown.
    not_empty: Condvar,
    /// Signalled when a batch is drained (blocked submitters wait on it)
    /// and on shutdown.
    not_full: Condvar,
    /// Queued-but-undrained request count (the reported queue depth).
    pending: AtomicUsize,
    /// Requests anywhere in the system: being scored inline, queued, or in
    /// a batch currently being scored. The idle shortcut reads this —
    /// "idle" must mean *nothing in flight*, not merely "queue empty",
    /// otherwise concurrent submitters all take the inline path and the
    /// batcher never engages.
    in_flight: AtomicUsize,
    shutdown: AtomicBool,
    /// The per-tenant token-bucket governor (present only when the config
    /// enables fairness).
    governor: Option<TenantGovernor>,
    /// Decoded-model cache: `(registry handle, decoded model)`. Re-resolved
    /// by `Arc` pointer identity so an RCU re-registration in the registry
    /// is picked up by the next batch; scoring threads holding the old
    /// decoded model finish their batch against it unperturbed. The decoded
    /// [`ParameterModel`] carries the forest's compiled inference
    /// representation (flat SoA arenas), so a re-registration compiles the
    /// new model **once** here — never per batch — and every drain-loop
    /// batch runs the compiled batch-major kernel.
    model: RwLock<Option<(Arc<PortableModel>, Arc<ParameterModel>)>>,
    /// The degraded-mode circuit breaker (present only when the config
    /// enables it; see [`crate::breaker`]).
    breaker: Option<Breaker>,
    /// The chaos-injected fault word (see [`crate::fleet::resilience`]):
    /// zero when no fault is induced, so the production hot path pays one
    /// relaxed load per batch and stays bit-identical to a runtime built
    /// before fault injection existed.
    induced: AtomicU64,
    stats: StatsInner,
    /// Opt-in observability (event sink + latency histograms; see
    /// [`crate::obs`]). `None` keeps every instrumentation site to one
    /// untaken branch.
    obs: Option<RuntimeObs>,
}

impl Shared {
    /// Records a typed event when observability is enabled; a single
    /// branch otherwise.
    fn obs_event(&self, kind: EventKind) {
        if let Some(obs) = &self.obs {
            obs.events().record(kind);
        }
    }

    /// The currently induced chaos fault, if any (one relaxed load).
    fn induced(&self) -> Option<InducedFault> {
        let word = self.induced.load(Ordering::Relaxed);
        if word == 0 {
            None
        } else {
            decode_fault(word)
        }
    }

    /// Returns the decoded parameter model, fetching/decoding it if the
    /// registry holds a model the cache has not seen (never holds a cache
    /// lock across registry access or deserialization).
    fn resolve_model(&self) -> Result<Arc<ParameterModel>> {
        if matches!(self.induced(), Some(InducedFault::ModelOutage)) {
            return Err(ServeError::Model("induced model outage".into()));
        }
        let portable = self
            .registry
            .load(&self.model_name)
            .map_err(|e| ServeError::Model(e.to_string()))?;
        {
            let cached = self.model.read();
            if let Some((handle, decoded)) = cached.as_ref() {
                if Arc::ptr_eq(handle, &portable) {
                    return Ok(Arc::clone(decoded));
                }
            }
        }
        let decoded = Arc::new(
            ParameterModel::from_portable(&portable)
                .map_err(|e| ServeError::Model(e.to_string()))?,
        );
        let swapped = {
            let mut cached = self.model.write();
            // A swap replaces an existing decode; the first resolve is a
            // cold load, not a swap.
            let swapped = cached
                .as_ref()
                .is_some_and(|(handle, _)| !Arc::ptr_eq(handle, &portable));
            *cached = Some((portable, Arc::clone(&decoded)));
            swapped
        };
        if swapped {
            self.obs_event(EventKind::ModelSwap);
        }
        Ok(decoded)
    }

    /// The raw model path for one request: resolve, predict, select (with
    /// the configured risk adjustment). No breaker involvement.
    fn model_score_one(&self, features: &[f64]) -> Result<ResourceRequest> {
        let model = self.resolve_model()?;
        scoring::score_features_with_risk(
            &model,
            features,
            self.config.objective,
            &self.config.candidate_counts,
            self.config.preemption_risk.as_ref(),
        )
        .map(|scored| scored.request)
        .map_err(|e| ServeError::Scoring(e.to_string()))
    }

    /// The heuristic fallback for one request (degraded mode).
    fn fallback_one(&self, features: &[f64]) -> Result<ResourceRequest> {
        heuristic_request(
            features,
            self.config.objective,
            &self.config.candidate_counts,
        )
    }

    /// Records a breaker failure, counting the trip if this one opened it.
    fn breaker_failure(&self, breaker: &Breaker) {
        if breaker.record_failure(Instant::now()) {
            self.stats.record_breaker_trip();
            self.obs_event(EventKind::BreakerTrip);
        }
    }

    /// Records a breaker success, emitting a recovery event when it
    /// closed a non-closed breaker (half-open probe success).
    fn breaker_success(&self, breaker: &Breaker) {
        if breaker.record_success() {
            self.obs_event(EventKind::BreakerRecovered);
        }
    }

    /// Scores one request through the breaker-guarded model path. The
    /// returned flag marks a degraded (fallback-served) answer. Without a
    /// breaker this is exactly the model path.
    fn score_one(&self, features: &[f64]) -> Result<(ResourceRequest, bool)> {
        // An induced crash fails hard — past the breaker's fallback — so
        // the fleet health monitor sees real errors, like a dead process.
        if matches!(self.induced(), Some(InducedFault::Crash)) {
            return Err(ServeError::Scoring("induced shard crash".into()));
        }
        let Some(breaker) = &self.breaker else {
            return self.model_score_one(features).map(|r| (r, false));
        };
        if !breaker.allow_model(Instant::now()) {
            return self.fallback_one(features).map(|r| (r, true));
        }
        let begin = Instant::now();
        match self.model_score_one(features) {
            Ok(request) => {
                if breaker.over_budget(begin.elapsed()) {
                    // The answer is correct, only late: use it, but let the
                    // slowness count toward tripping the breaker.
                    self.breaker_failure(breaker);
                } else {
                    self.breaker_success(breaker);
                }
                Ok((request, false))
            }
            Err(_) => {
                self.breaker_failure(breaker);
                self.fallback_one(features).map(|r| (r, true))
            }
        }
    }

    /// Fulfills one batched request, recording its level's deadline
    /// hit/miss (and degraded service) at fulfillment time.
    fn fulfill(
        &self,
        queued: &QueuedRequest,
        result: Result<ResourceRequest>,
        degraded: bool,
        now: Instant,
    ) {
        match result {
            Ok(request) => {
                let missed = now > queued.deadline;
                let latency = now.saturating_duration_since(queued.admitted_at);
                self.stats.record_level_completed(queued.level, missed);
                if degraded {
                    self.stats.record_degraded();
                }
                if let Some(obs) = &self.obs {
                    obs.record_latency(queued.level, latency);
                }
                queued.done.fulfill(Ok(Scored {
                    request,
                    missed_deadline: missed,
                    latency,
                    degraded,
                }));
            }
            Err(e) => queued.done.fulfill(Err(e)),
        }
    }

    /// The raw model path for a multi-request batch: resolve once, lay the
    /// rows out in `matrix`, run the batched kernel.
    fn model_score_batch(
        &self,
        matrix: &mut FeatureMatrix,
        batch: &[QueuedRequest],
    ) -> Result<Vec<ResourceRequest>> {
        let model = self.resolve_model()?;
        matrix.clear();
        for request in batch {
            matrix
                .push_row(&request.features)
                .expect("featurize_plan emits fixed-width rows");
        }
        scoring::score_feature_batch_with_risk(
            &model,
            matrix,
            self.config.objective,
            &self.config.candidate_counts,
            self.config.preemption_risk.as_ref(),
        )
        .map_err(|e| ServeError::Scoring(e.to_string()))
    }

    /// Serves a whole batch from the heuristic fallback (degraded mode).
    /// The heuristic fails only on an empty candidate range, which is
    /// uniform across rows, so the batch is counted failed iff every row is.
    fn fallback_batch(&self, batch: &[QueuedRequest]) {
        let results: Vec<Result<ResourceRequest>> = batch
            .iter()
            .map(|request| self.fallback_one(&request.features))
            .collect();
        let failed = results.iter().all(|r| r.is_err());
        self.stats.record_batch(batch.len(), failed);
        let now = Instant::now();
        for (request, result) in batch.iter().zip(results) {
            self.fulfill(request, result, true, now);
        }
    }

    /// Fails a whole batch with one error.
    fn fail_batch(&self, batch: &[QueuedRequest], error: ServeError) {
        self.stats.record_batch(batch.len(), true);
        for request in batch {
            request.done.fulfill(Err(error.clone()));
        }
    }

    /// Scores one drained batch and fulfills every completion. The breaker
    /// (when configured) gates the whole batch: one model call, one
    /// success/failure observation.
    fn process_batch(&self, matrix: &mut FeatureMatrix, batch: Vec<QueuedRequest>) {
        debug_assert!(!batch.is_empty());
        match self.induced() {
            // A crashed shard fails the whole batch hard (no fallback):
            // that is what makes quarantine detectable and failover real.
            Some(InducedFault::Crash) => {
                self.fail_batch(&batch, ServeError::Scoring("induced shard crash".into()));
                return;
            }
            // A stalled shard still answers correctly — late. The delay
            // runs on the worker thread, so the queue backs up exactly
            // like a straggler's would.
            Some(InducedFault::Stall(delay)) if !delay.is_zero() => std::thread::sleep(delay),
            _ => {}
        }
        if batch.len() == 1 {
            let result = self.score_one(&batch[0].features);
            self.stats.record_batch(1, result.is_err());
            match result {
                Ok((request, degraded)) => {
                    self.fulfill(&batch[0], Ok(request), degraded, Instant::now())
                }
                Err(e) => self.fulfill(&batch[0], Err(e), false, Instant::now()),
            }
            return;
        }
        if let Some(breaker) = &self.breaker {
            if !breaker.allow_model(Instant::now()) {
                self.fallback_batch(&batch);
                return;
            }
        }
        let begin = Instant::now();
        match self.model_score_batch(matrix, &batch) {
            Ok(requests) => {
                if let Some(breaker) = &self.breaker {
                    if breaker.over_budget(begin.elapsed()) {
                        self.breaker_failure(breaker);
                    } else {
                        self.breaker_success(breaker);
                    }
                }
                self.stats.record_batch(batch.len(), false);
                let now = Instant::now();
                for (request, outcome) in batch.iter().zip(requests) {
                    self.fulfill(request, Ok(outcome), false, now);
                }
            }
            Err(e) => {
                if let Some(breaker) = &self.breaker {
                    self.breaker_failure(breaker);
                    self.fallback_batch(&batch);
                } else {
                    self.fail_batch(&batch, e);
                }
            }
        }
    }
}

/// Publishes the runtime's own counters (and the batch-size histogram)
/// into a metrics registry at snapshot time, so the hot-path atomics in
/// [`StatsInner`] stay the single source of truth. Holds the runtime
/// weakly: a snapshot taken after the runtime is dropped simply omits
/// these metrics.
struct StatsSource {
    prefix: String,
    shared: Weak<Shared>,
}

impl MetricSource for StatsSource {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        let Some(shared) = self.shared.upgrade() else {
            return;
        };
        let stats = shared.stats.snapshot();
        let p = &self.prefix;
        let counters = [
            ("completed", stats.completed),
            ("inline_scored", stats.inline_scored),
            ("batches", stats.batches),
            ("dropped", stats.dropped),
            ("errors", stats.errors),
            ("demoted", stats.demoted),
            ("throttled", stats.throttled),
            ("degraded", stats.degraded),
            ("breaker_trips", stats.breaker_trips),
        ];
        for (name, value) in counters {
            out.push((format!("{p}.{name}"), MetricValue::Counter(value)));
        }
        for level in ServiceLevel::ALL {
            let counts = stats.level(level);
            let n = level.name();
            out.push((
                format!("{p}.level.{n}.completed"),
                MetricValue::Counter(counts.completed),
            ));
            out.push((
                format!("{p}.level.{n}.deadline_misses"),
                MetricValue::Counter(counts.deadline_misses),
            ));
            out.push((
                format!("{p}.level.{n}.shed"),
                MetricValue::Counter(counts.shed),
            ));
        }
        out.push((
            format!("{p}.batch_size"),
            MetricValue::Histogram(shared.stats.batch_histogram()),
        ));
        out.push((
            format!("{p}.queue_depth"),
            MetricValue::Gauge(shared.pending.load(Ordering::Acquire) as f64),
        ));
    }
}

/// Worker loop: wait for work, top the batch up within the window, drain
/// by WRR-across-levels / EDF-within-level, score, repeat.
fn worker_loop(shared: Arc<Shared>) {
    let mut matrix = FeatureMatrix::with_capacity(shared.feature_width, shared.config.max_batch);
    loop {
        let batch = {
            let mut queues = lock(&shared.queues);
            // Wait for the first request (or shutdown).
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if !queues.is_empty() {
                    break;
                }
                queues = shared
                    .not_empty
                    .wait(queues)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
            // Top the batch up: wait at most `batch_window` for more
            // requests, but never past `max_batch`.
            // A batch can only grow to whichever bound is tighter: the
            // batch size, or the queue capacity (a full queue cannot
            // receive the requests the window would wait for).
            let window = shared.config.batch_window;
            let fill_target = shared.config.max_batch.min(shared.config.queue_capacity);
            if !window.is_zero() && queues.len() < fill_target {
                let deadline = Instant::now() + window;
                while queues.len() < fill_target && !shared.shutdown.load(Ordering::Acquire) {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _timeout) = shared
                        .not_empty
                        .wait_timeout(queues, deadline - now)
                        .unwrap_or_else(|poison| poison.into_inner());
                    queues = guard;
                }
            }
            let take = queues.len().min(shared.config.max_batch);
            let batch = queues.pop_batch(take);
            shared.pending.fetch_sub(batch.len(), Ordering::AcqRel);
            shared.not_full.notify_all();
            batch
        };
        if !batch.is_empty() {
            let size = batch.len();
            if shared.obs.is_some() {
                let backlog = shared.pending.load(Ordering::Acquire);
                shared.obs_event(EventKind::BatchDrain {
                    size: size.min(u32::MAX as usize) as u32,
                    backlog: backlog.min(u32::MAX as usize) as u32,
                });
            }
            shared.process_batch(&mut matrix, batch);
            shared.in_flight.fetch_sub(size, Ordering::AcqRel);
        }
    }
}

/// A shared, concurrent, micro-batching, QoS-aware scoring service over one
/// registered model. See the crate docs for the architecture; construct
/// with [`ScoringRuntime::new`], score from any thread with
/// [`score`](Self::score) / [`try_score`](Self::try_score) (plain) or
/// [`submit`](Self::submit) / [`try_submit`](Self::try_submit) (full QoS
/// envelope), inspect with [`stats`](Self::stats), and stop with
/// [`shutdown`](Self::shutdown) (or drop the handle).
pub struct ScoringRuntime {
    shared: Arc<Shared>,
    worker_count: usize,
    workers: StdMutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ScoringRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoringRuntime")
            .field("model_name", &self.shared.model_name)
            .field("workers", &self.worker_count)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

impl ScoringRuntime {
    /// Spawns the runtime over a registry and model name. The model is
    /// resolved lazily (first score), mirroring the optimizer rule, so the
    /// runtime may be built before the model is registered.
    pub fn new(
        registry: Arc<ModelRegistry>,
        model_name: impl Into<String>,
        config: RuntimeConfig,
    ) -> Self {
        let config = config.sanitized();
        let shared = Arc::new(Shared {
            registry,
            model_name: model_name.into(),
            feature_width: full_feature_names().len(),
            queues: StdMutex::new(PriorityQueues::new(&config.qos, config.queue_capacity)),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            pending: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            governor: config.qos.fairness.map(TenantGovernor::new),
            model: RwLock::new(None),
            breaker: config.breaker.clone().map(Breaker::new),
            induced: AtomicU64::new(0),
            stats: StatsInner::new(config.max_batch),
            obs: config.observability.as_ref().map(RuntimeObs::new),
            config,
        });
        if let Some(obs_cfg) = &shared.config.observability {
            // The registry outlives the runtime in the common case; the
            // Weak breaks the registry → source → Shared → ObsConfig →
            // registry cycle and makes the source vanish with the runtime.
            obs_cfg.registry.register_source(Box::new(StatsSource {
                prefix: obs_cfg.prefix.clone(),
                shared: Arc::downgrade(&shared),
            }));
        }
        let workers: Vec<JoinHandle<()>> = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ae-serve-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawning a scoring worker")
            })
            .collect();
        Self {
            shared,
            worker_count: workers.len(),
            workers: StdMutex::new(workers),
        }
    }

    /// Pre-resolves (fetches and decodes) the model so the first scored
    /// query does not pay the cold-start cost.
    pub fn warm(&self) -> Result<()> {
        self.shared.resolve_model().map(|_| ())
    }

    /// Scores a plan at [`ServiceLevel::Standard`] with no tenant
    /// attribution, blocking while the admission queue is full
    /// (backpressure) and until the result is ready.
    pub fn score(&self, plan: &QueryPlan) -> Result<ResourceRequest> {
        self.submit(ScoreRequest::from_plan(plan))
            .map(|outcome| outcome.request)
    }

    /// Scores a plan at [`ServiceLevel::Standard`], failing fast with
    /// [`ServeError::Saturated`] (and counting the request as dropped)
    /// instead of blocking on a full queue.
    pub fn try_score(&self, plan: &QueryPlan) -> Result<ResourceRequest> {
        self.try_submit(ScoreRequest::from_plan(plan))
            .map(|outcome| outcome.request)
    }

    /// [`score`](Self::score) for a caller that already featurized the plan.
    pub fn score_features(&self, features: Vec<f64>) -> Result<ResourceRequest> {
        self.submit(ScoreRequest::from_features(features))
            .map(|outcome| outcome.request)
    }

    /// [`try_score`](Self::try_score) for a caller that already featurized
    /// the plan.
    pub fn try_score_features(&self, features: Vec<f64>) -> Result<ResourceRequest> {
        self.try_submit(ScoreRequest::from_features(features))
            .map(|outcome| outcome.request)
    }

    /// Rejects feature vectors of the wrong width up front: past this point
    /// a malformed row would only surface inside a worker batch, where a
    /// panic would kill the worker and strand every completion in the batch.
    fn validate_width(&self, features: &[f64]) -> Result<()> {
        if features.len() != self.shared.feature_width {
            return Err(ServeError::Scoring(format!(
                "feature vector has {} columns, the model expects {}",
                features.len(),
                self.shared.feature_width
            )));
        }
        Ok(())
    }

    /// Tenant admission + deadline stamping: applies the fairness policy
    /// (which may demote the level or reject outright) and resolves the
    /// absolute deadline. Returns the queued-request envelope.
    fn admit(&self, request: &ScoreRequest, now: Instant) -> Result<(ServiceLevel, Instant)> {
        let mut level = request.level;
        if let (Some(governor), Some(tenant)) = (&self.shared.governor, request.tenant) {
            match governor.admit(tenant, now) {
                Admission::Granted => {}
                Admission::Demoted => {
                    if level != ServiceLevel::BestEffort {
                        self.shared.obs_event(EventKind::Demotion {
                            from_level: level.index() as u8,
                        });
                        level = ServiceLevel::BestEffort;
                        self.shared.stats.record_demoted();
                    }
                }
                Admission::Rejected => {
                    self.shared.stats.record_throttled();
                    self.shared.obs_event(EventKind::Throttle);
                    return Err(ServeError::Throttled(tenant));
                }
            }
        }
        let budget = request
            .deadline_budget
            .unwrap_or_else(|| self.shared.config.qos.deadline_budget(level))
            .min(MAX_DEADLINE_BUDGET);
        Ok((level, now + budget))
    }

    /// Scores with a full QoS envelope, blocking while the admission queue
    /// is full (backpressure; a non-`BestEffort` request sheds the
    /// least-urgent queued `BestEffort` request beyond the protected floor
    /// instead of waiting, if one exists) and until the result is ready.
    pub fn submit(&self, request: ScoreRequest) -> Result<ScoreOutcome> {
        self.validate_width(&request.features)?;
        let (level, deadline) = self.admit(&request, Instant::now())?;
        if self.try_claim_inline() {
            return self.score_inline_claimed(request.features, level, deadline);
        }
        let done = self.admit_to_queues(request.features, level, deadline, true)?;
        let scored = done.wait()?;
        Ok(make_outcome(&self.shared, scored, level))
    }

    /// [`submit`](Self::submit) without backpressure: fails fast with
    /// [`ServeError::Saturated`] (counting the request as dropped) when the
    /// queue is full and shedding cannot make room.
    pub fn try_submit(&self, request: ScoreRequest) -> Result<ScoreOutcome> {
        self.validate_width(&request.features)?;
        let (level, deadline) = self.admit(&request, Instant::now())?;
        if self.try_claim_inline() {
            return self.score_inline_claimed(request.features, level, deadline);
        }
        let done = self.admit_to_queues(request.features, level, deadline, false)?;
        let scored = done.wait()?;
        Ok(make_outcome(&self.shared, scored, level))
    }

    /// Fire-and-forget [`submit`](Self::submit): admits the request (with
    /// backpressure) and returns a [`ScoreTicket`] to redeem later, instead
    /// of blocking until the result is ready. Detached submissions always
    /// go through the queues (never the inline shortcut) — the point is to
    /// keep the submitting thread free.
    pub fn submit_detached(&self, request: ScoreRequest) -> Result<ScoreTicket> {
        self.validate_width(&request.features)?;
        let (level, deadline) = self.admit(&request, Instant::now())?;
        let done = self.admit_to_queues(request.features, level, deadline, true)?;
        Ok(ScoreTicket {
            shared: Arc::clone(&self.shared),
            done,
            level,
        })
    }

    /// Fire-and-forget [`try_submit`](Self::try_submit): like
    /// [`submit_detached`](Self::submit_detached) but fails fast with
    /// [`ServeError::Saturated`] instead of applying backpressure. This is
    /// what an open-loop load generator uses: arrivals keep their schedule
    /// and overload turns into sheds/drops rather than client-side queueing.
    pub fn try_submit_detached(&self, request: ScoreRequest) -> Result<ScoreTicket> {
        self.validate_width(&request.features)?;
        let (level, deadline) = self.admit(&request, Instant::now())?;
        let done = self.admit_to_queues(request.features, level, deadline, false)?;
        Ok(ScoreTicket {
            shared: Arc::clone(&self.shared),
            done,
            level,
        })
    }

    /// The shared queue-admission path: waits for room (`blocking`) or
    /// fails fast, shedding the least-urgent `BestEffort` request to make
    /// room for a higher level when the queue is full. The shed victim is
    /// failed outside the queue lock.
    fn admit_to_queues(
        &self,
        features: Vec<f64>,
        level: ServiceLevel,
        deadline: Instant,
        blocking: bool,
    ) -> Result<Arc<Completion>> {
        let mut shed_victim = None;
        let done = {
            let mut queues = lock(&self.shared.queues);
            loop {
                if self.shared.shutdown.load(Ordering::Acquire) {
                    return Err(ServeError::ShutDown);
                }
                if queues.len() < self.shared.config.queue_capacity {
                    break;
                }
                if level > ServiceLevel::BestEffort {
                    if let Some(victim) = queues.shed_best_effort() {
                        self.shared.pending.fetch_sub(1, Ordering::AcqRel);
                        self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                        shed_victim = Some(victim);
                        break;
                    }
                }
                if !blocking {
                    self.shared.stats.record_dropped();
                    self.shared.obs_event(EventKind::Dropped {
                        level: level.index() as u8,
                    });
                    return Err(ServeError::Saturated);
                }
                queues = self
                    .shared
                    .not_full
                    .wait(queues)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
            self.enqueue(&mut queues, features, level, deadline)
        };
        if let Some(victim) = shed_victim {
            self.shed(victim);
        }
        self.shared.obs_event(EventKind::Admission {
            level: level.index() as u8,
            queued: true,
        });
        self.shared.not_empty.notify_one();
        Ok(done)
    }

    fn enqueue(
        &self,
        queues: &mut StdMutexGuard<'_, PriorityQueues>,
        features: Vec<f64>,
        level: ServiceLevel,
        deadline: Instant,
    ) -> Arc<Completion> {
        let done = Arc::new(Completion::default());
        queues.push(QueuedRequest {
            features,
            level,
            admitted_at: Instant::now(),
            deadline,
            done: Arc::clone(&done),
        });
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.shared.in_flight.fetch_add(1, Ordering::AcqRel);
        done
    }

    /// Fails a shed victim (outside the queue lock) and records the shed.
    fn shed(&self, victim: QueuedRequest) {
        self.shared.stats.record_shed(victim.level);
        self.shared.obs_event(EventKind::Shed {
            level: victim.level.index() as u8,
        });
        victim.done.fulfill(Err(ServeError::Shed));
    }

    /// Attempts to claim an inline-scoring slot: succeeds only when the
    /// shortcut is enabled, workers exist to drain the queue otherwise, and
    /// fewer than `inline_max_in_flight` requests are in flight anywhere.
    /// Lightly loaded traffic is judged on the *in-flight* count, not on
    /// "queue empty" — under concurrent submission the queue stays empty
    /// exactly because everyone would take the shortcut. Load beyond the
    /// bound overflows into the queue, where the batch window amortizes it.
    /// On success the caller holds one in-flight slot and must score and
    /// release via [`score_inline_claimed`](Self::score_inline_claimed).
    fn try_claim_inline(&self) -> bool {
        if !self.shared.config.inline_when_idle
            || self.worker_count == 0
            || self.shared.shutdown.load(Ordering::Acquire)
        {
            return false;
        }
        let limit = self.shared.config.inline_max_in_flight;
        let mut current = self.shared.in_flight.load(Ordering::Acquire);
        while current < limit {
            match self.shared.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
        false
    }

    /// Scores on the submitting thread; the caller must hold an in-flight
    /// claim from [`try_claim_inline`](Self::try_claim_inline).
    fn score_inline_claimed(
        &self,
        features: Vec<f64>,
        level: ServiceLevel,
        deadline: Instant,
    ) -> Result<ScoreOutcome> {
        let begin = Instant::now();
        // No admission event here: the inline fast path makes no
        // scheduling decision (no queue, no demotion, no shed), and at
        // fast-path rates a per-request event record would be the single
        // largest observability cost. Inline traffic is fully accounted
        // by the latency histograms and the `inline_scored` counter.
        let result = self.shared.score_one(&features);
        self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        match result {
            Ok((request, degraded)) => {
                self.shared.stats.record_inline();
                let now = Instant::now();
                let missed = now > deadline;
                let latency = now.saturating_duration_since(begin);
                self.shared.stats.record_level_completed(level, missed);
                if degraded {
                    self.shared.stats.record_degraded();
                }
                if let Some(obs) = &self.shared.obs {
                    obs.record_latency(level, latency);
                }
                Ok(make_outcome(
                    &self.shared,
                    Scored {
                        request,
                        missed_deadline: missed,
                        latency,
                        degraded,
                    },
                    level,
                ))
            }
            Err(e) => {
                self.shared.stats.record_error();
                Err(e)
            }
        }
    }

    /// Crate-internal (fleet work stealing): removes up to `max` of the
    /// least-urgent non-`Interactive` queued requests, transferring their
    /// pending/in-flight accounting out of this runtime. The stolen
    /// requests keep their admission timestamps, deadlines, and completion
    /// slots — whichever runtime scores them fulfills (and counts) them,
    /// so a stolen request is never double-counted.
    pub(crate) fn steal_backlog(&self, max: usize) -> Vec<QueuedRequest> {
        if max == 0 {
            return Vec::new();
        }
        let stolen = {
            let mut queues = lock(&self.shared.queues);
            queues.steal_least_urgent(max)
        };
        if !stolen.is_empty() {
            self.shared
                .pending
                .fetch_sub(stolen.len(), Ordering::AcqRel);
            self.shared
                .in_flight
                .fetch_sub(stolen.len(), Ordering::AcqRel);
            // Room opened up: unblock submitters waiting on a full queue.
            self.shared.not_full.notify_all();
        }
        stolen
    }

    /// Crate-internal (fleet work stealing): admits stolen requests into
    /// this runtime's queues, taking over their pending/in-flight
    /// accounting. Returns the batch unchanged (nothing admitted) when
    /// this runtime is shutting down — the caller must re-home or fail
    /// those requests; their completion slots are still unfulfilled.
    pub(crate) fn inject_backlog(&self, batch: Vec<QueuedRequest>) -> Vec<QueuedRequest> {
        if batch.is_empty() {
            return batch;
        }
        {
            let mut queues = lock(&self.shared.queues);
            // Checked under the queue lock: shutdown drains the queues
            // under this same lock, so an injection serialized before the
            // drain is drained (and failed) by it, and one serialized
            // after is rejected here. Either way no completion is lost.
            if self.shared.shutdown.load(Ordering::Acquire) {
                return batch;
            }
            let count = batch.len();
            for request in batch {
                queues.push(request);
            }
            self.shared.pending.fetch_add(count, Ordering::AcqRel);
            self.shared.in_flight.fetch_add(count, Ordering::AcqRel);
        }
        self.shared.not_empty.notify_all();
        Vec::new()
    }

    /// Crate-internal (fleet work stealing): fails stranded stolen
    /// requests (both runtimes shutting down) with
    /// [`ServeError::ShutDown`], counting them as errors here — the same
    /// accounting shutdown applies to its own abandoned queue.
    pub(crate) fn abandon_backlog(&self, batch: Vec<QueuedRequest>) {
        for request in batch {
            self.shared.stats.record_error();
            request.done.fulfill(Err(ServeError::ShutDown));
        }
    }

    /// Crate-internal (fleet chaos): induces or clears a fault on this
    /// runtime. Takes effect on the next batch/inline score; clearing
    /// restores normal service (modulo a still-open breaker cooling down).
    pub(crate) fn set_induced_fault(&self, fault: Option<InducedFault>) {
        self.shared
            .induced
            .store(encode_fault(fault), Ordering::Relaxed);
    }

    /// Crate-internal (fleet chaos): the currently induced fault, if any.
    pub(crate) fn induced_fault(&self) -> Option<InducedFault> {
        decode_fault(self.shared.induced.load(Ordering::Relaxed))
    }

    /// Crate-internal (fleet health): true while this runtime's breaker
    /// is open (degraded mode). Read-only — never consumes the half-open
    /// probe. Always false without a configured breaker.
    pub(crate) fn breaker_open(&self) -> bool {
        self.shared
            .breaker
            .as_ref()
            .is_some_and(|breaker| breaker.is_open(Instant::now()))
    }

    /// Crate-internal (fleet work stealing / evacuation): queued requests
    /// the steal hooks may migrate (`Standard` ∪ `BestEffort`; never
    /// `Interactive`).
    pub(crate) fn evacuable_backlog(&self) -> usize {
        lock(&self.shared.queues).evacuable_len()
    }

    /// Crate-internal (fleet work stealing): admission-queue slots
    /// currently free (capacity minus queued requests).
    pub(crate) fn free_queue_capacity(&self) -> usize {
        self.shared
            .config
            .queue_capacity
            .saturating_sub(self.shared.pending.load(Ordering::Acquire))
    }

    /// A point-in-time snapshot of the runtime counters.
    pub fn stats(&self) -> RuntimeStats {
        self.shared.stats.snapshot()
    }

    /// The runtime's live observability handles (event sink, per-level
    /// latency histograms), when [`crate::RuntimeConfig::observability`]
    /// is set.
    pub fn observability(&self) -> Option<&RuntimeObs> {
        self.shared.obs.as_ref()
    }

    /// Requests currently queued (excludes batches being scored).
    pub fn queue_depth(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    /// The model name this runtime serves.
    pub fn model_name(&self) -> &str {
        &self.shared.model_name
    }

    /// Stops the runtime: in-flight batches finish, queued-but-undrained
    /// requests across every priority level fail with
    /// [`ServeError::ShutDown`], workers are joined. Callable on a shared
    /// handle (e.g. through an `Arc`); subsequent calls are no-ops, and
    /// dropping the runtime shuts it down too.
    pub fn shutdown(&self) {
        if !self.shared.shutdown.swap(true, Ordering::AcqRel) {
            // First shutdown only: repeat calls are no-ops and must not
            // repeat the event.
            self.shared.obs_event(EventKind::Shutdown);
        }
        let abandoned: Vec<QueuedRequest> = {
            let mut queues = lock(&self.shared.queues);
            let abandoned = queues.drain_all();
            self.shared
                .pending
                .fetch_sub(abandoned.len(), Ordering::AcqRel);
            self.shared
                .in_flight
                .fetch_sub(abandoned.len(), Ordering::AcqRel);
            abandoned
        };
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for request in abandoned {
            self.shared.stats.record_error();
            request.done.fulfill(Err(ServeError::ShutDown));
        }
        for worker in lock(&self.workers).drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ScoringRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}
