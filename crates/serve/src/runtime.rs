//! The concurrent batched scoring runtime.
//!
//! Request flow:
//!
//! ```text
//!  client threads                 workers (config.workers)
//!  ──────────────                 ────────────────────────
//!  featurize plan                 wait for first request
//!  idle? → score inline ─────┐    top batch up (batch_window, max_batch)
//!  else: bounded queue ──────┼──▶ lay rows out in one FeatureMatrix
//!  wait on completion ◀──────┘    score_feature_batch → fulfill each
//! ```
//!
//! Scoring is pure (no RNG, no shared mutable state), so results are a
//! function of the submitted plan and the registered model only — batching,
//! worker count, and scheduling order cannot change any individual
//! [`ResourceRequest`]. Concurrency affects *throughput*, never *answers*.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use ae_engine::plan::QueryPlan;
use ae_ml::matrix::FeatureMatrix;
use ae_ml::portable::PortableModel;
use autoexecutor::features::{featurize_plan, full_feature_names};
use autoexecutor::optimizer::ResourceRequest;
use autoexecutor::registry::ModelRegistry;
use autoexecutor::scoring;
use autoexecutor::training::ParameterModel;
use parking_lot::RwLock;

use crate::config::RuntimeConfig;
use crate::stats::{RuntimeStats, StatsInner};
use crate::{Result, ServeError};

/// Locks a std mutex, recovering from poisoning (a panicking worker must
/// not wedge every client).
fn lock<T>(mutex: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// One queued scoring request: the featurized plan plus its completion slot.
struct Request {
    features: Vec<f64>,
    done: Arc<Completion>,
}

/// A one-shot completion slot the submitting thread blocks on.
#[derive(Default)]
struct Completion {
    slot: StdMutex<Option<Result<ResourceRequest>>>,
    ready: Condvar,
}

impl Completion {
    fn fulfill(&self, result: Result<ResourceRequest>) {
        *lock(&self.slot) = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<ResourceRequest> {
        let mut guard = lock(&self.slot);
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
}

/// State shared between the handle, submitters, and workers.
struct Shared {
    registry: Arc<ModelRegistry>,
    model_name: String,
    config: RuntimeConfig,
    feature_width: usize,
    queue: StdMutex<VecDeque<Request>>,
    /// Signalled when a request is enqueued (workers and batch top-up wait
    /// on it) and on shutdown.
    not_empty: Condvar,
    /// Signalled when a batch is drained (blocked submitters wait on it)
    /// and on shutdown.
    not_full: Condvar,
    /// Queued-but-undrained request count (the reported queue depth).
    pending: AtomicUsize,
    /// Requests anywhere in the system: being scored inline, queued, or in
    /// a batch currently being scored. The idle shortcut reads this —
    /// "idle" must mean *nothing in flight*, not merely "queue empty",
    /// otherwise concurrent submitters all take the inline path and the
    /// batcher never engages.
    in_flight: AtomicUsize,
    shutdown: AtomicBool,
    /// Decoded-model cache: `(registry handle, decoded model)`. Re-resolved
    /// by `Arc` pointer identity so an RCU re-registration in the registry
    /// is picked up by the next batch; scoring threads holding the old
    /// decoded model finish their batch against it unperturbed.
    model: RwLock<Option<(Arc<PortableModel>, Arc<ParameterModel>)>>,
    stats: StatsInner,
}

impl Shared {
    /// Returns the decoded parameter model, fetching/decoding it if the
    /// registry holds a model the cache has not seen (never holds a cache
    /// lock across registry access or deserialization).
    fn resolve_model(&self) -> Result<Arc<ParameterModel>> {
        let portable = self
            .registry
            .load(&self.model_name)
            .map_err(|e| ServeError::Model(e.to_string()))?;
        {
            let cached = self.model.read();
            if let Some((handle, decoded)) = cached.as_ref() {
                if Arc::ptr_eq(handle, &portable) {
                    return Ok(Arc::clone(decoded));
                }
            }
        }
        let decoded = Arc::new(
            ParameterModel::from_portable(&portable)
                .map_err(|e| ServeError::Model(e.to_string()))?,
        );
        *self.model.write() = Some((portable, Arc::clone(&decoded)));
        Ok(decoded)
    }

    fn score_one(&self, features: &[f64]) -> Result<ResourceRequest> {
        let model = self.resolve_model()?;
        scoring::score_features(
            &model,
            features,
            self.config.objective,
            &self.config.candidate_counts,
        )
        .map(|scored| scored.request)
        .map_err(|e| ServeError::Scoring(e.to_string()))
    }

    /// Scores one drained batch and fulfills every completion.
    fn process_batch(&self, matrix: &mut FeatureMatrix, batch: Vec<Request>) {
        debug_assert!(!batch.is_empty());
        if batch.len() == 1 {
            let result = self.score_one(&batch[0].features);
            self.stats.record_batch(1, result.is_err());
            batch[0].done.fulfill(result);
            return;
        }
        let model = match self.resolve_model() {
            Ok(model) => model,
            Err(e) => {
                self.stats.record_batch(batch.len(), true);
                for request in &batch {
                    request.done.fulfill(Err(e.clone()));
                }
                return;
            }
        };
        matrix.clear();
        for request in &batch {
            matrix
                .push_row(&request.features)
                .expect("featurize_plan emits fixed-width rows");
        }
        match scoring::score_feature_batch(
            &model,
            matrix,
            self.config.objective,
            &self.config.candidate_counts,
        ) {
            Ok(requests) => {
                self.stats.record_batch(batch.len(), false);
                for (request, outcome) in batch.iter().zip(requests) {
                    request.done.fulfill(Ok(outcome));
                }
            }
            Err(e) => {
                self.stats.record_batch(batch.len(), true);
                let err = ServeError::Scoring(e.to_string());
                for request in &batch {
                    request.done.fulfill(Err(err.clone()));
                }
            }
        }
    }
}

/// Worker loop: wait for work, top the batch up within the window, drain
/// FIFO, score, repeat.
fn worker_loop(shared: Arc<Shared>) {
    let mut matrix = FeatureMatrix::with_capacity(shared.feature_width, shared.config.max_batch);
    loop {
        let batch = {
            let mut queue = lock(&shared.queue);
            // Wait for the first request (or shutdown).
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if !queue.is_empty() {
                    break;
                }
                queue = shared
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
            // Top the batch up: wait at most `batch_window` for more
            // requests, but never past `max_batch`.
            // A batch can only grow to whichever bound is tighter: the
            // batch size, or the queue capacity (a full queue cannot
            // receive the requests the window would wait for).
            let window = shared.config.batch_window;
            let fill_target = shared.config.max_batch.min(shared.config.queue_capacity);
            if !window.is_zero() && queue.len() < fill_target {
                let deadline = Instant::now() + window;
                while queue.len() < fill_target && !shared.shutdown.load(Ordering::Acquire) {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _timeout) = shared
                        .not_empty
                        .wait_timeout(queue, deadline - now)
                        .unwrap_or_else(|poison| poison.into_inner());
                    queue = guard;
                }
            }
            let take = queue.len().min(shared.config.max_batch);
            let batch: Vec<Request> = queue.drain(..take).collect();
            shared.pending.fetch_sub(batch.len(), Ordering::AcqRel);
            shared.not_full.notify_all();
            batch
        };
        if !batch.is_empty() {
            let size = batch.len();
            shared.process_batch(&mut matrix, batch);
            shared.in_flight.fetch_sub(size, Ordering::AcqRel);
        }
    }
}

/// A shared, concurrent, micro-batching scoring service over one registered
/// model. See the crate docs for the architecture; construct with
/// [`ScoringRuntime::new`], score from any thread with
/// [`score`](Self::score) / [`try_score`](Self::try_score), inspect with
/// [`stats`](Self::stats), and stop with [`shutdown`](Self::shutdown) (or
/// drop the handle).
pub struct ScoringRuntime {
    shared: Arc<Shared>,
    worker_count: usize,
    workers: StdMutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ScoringRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoringRuntime")
            .field("model_name", &self.shared.model_name)
            .field("workers", &self.worker_count)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

impl ScoringRuntime {
    /// Spawns the runtime over a registry and model name. The model is
    /// resolved lazily (first score), mirroring the optimizer rule, so the
    /// runtime may be built before the model is registered.
    pub fn new(
        registry: Arc<ModelRegistry>,
        model_name: impl Into<String>,
        config: RuntimeConfig,
    ) -> Self {
        let config = config.sanitized();
        let shared = Arc::new(Shared {
            registry,
            model_name: model_name.into(),
            feature_width: full_feature_names().len(),
            queue: StdMutex::new(VecDeque::with_capacity(config.queue_capacity)),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            pending: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            model: RwLock::new(None),
            stats: StatsInner::new(config.max_batch),
            config,
        });
        let workers: Vec<JoinHandle<()>> = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ae-serve-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawning a scoring worker")
            })
            .collect();
        Self {
            shared,
            worker_count: workers.len(),
            workers: StdMutex::new(workers),
        }
    }

    /// Pre-resolves (fetches and decodes) the model so the first scored
    /// query does not pay the cold-start cost.
    pub fn warm(&self) -> Result<()> {
        self.shared.resolve_model().map(|_| ())
    }

    /// Scores a plan, blocking while the admission queue is full
    /// (backpressure) and until the result is ready.
    pub fn score(&self, plan: &QueryPlan) -> Result<ResourceRequest> {
        self.score_features(featurize_plan(plan))
    }

    /// Scores a plan, failing fast with [`ServeError::Saturated`] (and
    /// counting the request as dropped) instead of blocking on a full queue.
    pub fn try_score(&self, plan: &QueryPlan) -> Result<ResourceRequest> {
        self.try_score_features(featurize_plan(plan))
    }

    /// Rejects feature vectors of the wrong width up front: past this point
    /// a malformed row would only surface inside a worker batch, where a
    /// panic would kill the worker and strand every completion in the batch.
    fn validate_width(&self, features: &[f64]) -> Result<()> {
        if features.len() != self.shared.feature_width {
            return Err(ServeError::Scoring(format!(
                "feature vector has {} columns, the model expects {}",
                features.len(),
                self.shared.feature_width
            )));
        }
        Ok(())
    }

    /// [`score`](Self::score) for a caller that already featurized the plan.
    pub fn score_features(&self, features: Vec<f64>) -> Result<ResourceRequest> {
        self.validate_width(&features)?;
        if self.try_claim_inline() {
            return self.score_inline_claimed(&features);
        }
        let done = {
            let mut queue = lock(&self.shared.queue);
            loop {
                if self.shared.shutdown.load(Ordering::Acquire) {
                    return Err(ServeError::ShutDown);
                }
                if queue.len() < self.shared.config.queue_capacity {
                    break;
                }
                queue = self
                    .shared
                    .not_full
                    .wait(queue)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
            self.enqueue(&mut queue, features)
        };
        self.shared.not_empty.notify_one();
        done.wait()
    }

    /// [`try_score`](Self::try_score) for a caller that already featurized
    /// the plan.
    pub fn try_score_features(&self, features: Vec<f64>) -> Result<ResourceRequest> {
        self.validate_width(&features)?;
        if self.try_claim_inline() {
            return self.score_inline_claimed(&features);
        }
        let done = {
            let mut queue = lock(&self.shared.queue);
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(ServeError::ShutDown);
            }
            if queue.len() >= self.shared.config.queue_capacity {
                self.shared.stats.record_dropped();
                return Err(ServeError::Saturated);
            }
            self.enqueue(&mut queue, features)
        };
        self.shared.not_empty.notify_one();
        done.wait()
    }

    fn enqueue(
        &self,
        queue: &mut StdMutexGuard<'_, VecDeque<Request>>,
        features: Vec<f64>,
    ) -> Arc<Completion> {
        let done = Arc::new(Completion::default());
        queue.push_back(Request {
            features,
            done: Arc::clone(&done),
        });
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.shared.in_flight.fetch_add(1, Ordering::AcqRel);
        done
    }

    /// Attempts to claim an inline-scoring slot: succeeds only when the
    /// shortcut is enabled, workers exist to drain the queue otherwise, and
    /// fewer than `inline_max_in_flight` requests are in flight anywhere.
    /// Lightly loaded traffic is judged on the *in-flight* count, not on
    /// "queue empty" — under concurrent submission the queue stays empty
    /// exactly because everyone would take the shortcut. Load beyond the
    /// bound overflows into the queue, where the batch window amortizes it.
    /// On success the caller holds one in-flight slot and must score and
    /// release via [`score_inline_claimed`](Self::score_inline_claimed).
    fn try_claim_inline(&self) -> bool {
        if !self.shared.config.inline_when_idle
            || self.worker_count == 0
            || self.shared.shutdown.load(Ordering::Acquire)
        {
            return false;
        }
        let limit = self.shared.config.inline_max_in_flight;
        let mut current = self.shared.in_flight.load(Ordering::Acquire);
        while current < limit {
            match self.shared.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
        false
    }

    /// Scores on the submitting thread; the caller must hold an in-flight
    /// claim from [`try_claim_inline`](Self::try_claim_inline).
    fn score_inline_claimed(&self, features: &[f64]) -> Result<ResourceRequest> {
        let result = self.shared.score_one(features);
        self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        if result.is_ok() {
            self.shared.stats.record_inline();
        } else {
            self.shared.stats.record_error();
        }
        result
    }

    /// A point-in-time snapshot of the runtime counters.
    pub fn stats(&self) -> RuntimeStats {
        self.shared.stats.snapshot()
    }

    /// Requests currently queued (excludes batches being scored).
    pub fn queue_depth(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    /// The model name this runtime serves.
    pub fn model_name(&self) -> &str {
        &self.shared.model_name
    }

    /// Stops the runtime: in-flight batches finish, queued-but-undrained
    /// requests fail with [`ServeError::ShutDown`], workers are joined.
    /// Callable on a shared handle (e.g. through an `Arc`); subsequent
    /// calls are no-ops, and dropping the runtime shuts it down too.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let abandoned: Vec<Request> = {
            let mut queue = lock(&self.shared.queue);
            let abandoned: Vec<Request> = queue.drain(..).collect();
            self.shared
                .pending
                .fetch_sub(abandoned.len(), Ordering::AcqRel);
            self.shared
                .in_flight
                .fetch_sub(abandoned.len(), Ordering::AcqRel);
            abandoned
        };
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for request in abandoned {
            self.shared.stats.record_error();
            request.done.fulfill(Err(ServeError::ShutDown));
        }
        for worker in lock(&self.workers).drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ScoringRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}
