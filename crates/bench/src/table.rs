//! Small text-formatting helpers for experiment output.

use ae_ml::metrics::{empirical_cdf, percentile_sorted};

/// Prints a section header for an experiment.
pub fn section(id: &str, title: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Prints a table header row followed by a separator.
pub fn header(columns: &[&str]) {
    let row: Vec<String> = columns.iter().map(|c| format!("{c:>16}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat(17 * columns.len()));
}

/// Prints one row of right-aligned cells.
pub fn row(cells: &[String]) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>16}")).collect();
    println!("{}", row.join(" "));
}

/// Formats a float with the given precision.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Prints a cumulative distribution as the percentiles the paper's CDF
/// figures let a reader extract (p10/p25/p50/p75/p90 plus min/max).
pub fn cdf_summary(label: &str, values: &[f64], decimals: usize) {
    if values.is_empty() {
        println!("{label:<28} (no data)");
        return;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = |pct: f64| fmt(percentile_sorted(&sorted, pct), decimals);
    println!(
        "{label:<28} min={} p10={} p25={} p50={} p75={} p90={} max={}",
        p(0.0),
        p(10.0),
        p(25.0),
        p(50.0),
        p(75.0),
        p(90.0),
        p(100.0)
    );
}

/// Prints the fraction of values at or below each of the given thresholds —
/// the "X% of applications have ≤ Y" readings of the CDF figures.
pub fn cdf_at_thresholds(label: &str, values: &[f64], thresholds: &[f64]) {
    let cdf = empirical_cdf(values);
    let at = |threshold: f64| {
        let pct = cdf
            .iter()
            .filter(|&&(v, _)| v <= threshold)
            .map(|&(_, p)| p)
            .next_back()
            .unwrap_or(0.0);
        format!("P(x<={threshold:.0})={pct:.0}%")
    };
    let cells: Vec<String> = thresholds.iter().map(|&t| at(t)).collect();
    println!("{label:<28} {}", cells.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_rounds_to_requested_precision() {
        assert_eq!(fmt(2.4681, 2), "2.47");
        assert_eq!(fmt(10.0, 0), "10");
    }

    #[test]
    fn cdf_helpers_do_not_panic_on_edge_cases() {
        cdf_summary("empty", &[], 2);
        cdf_summary("single", &[5.0], 1);
        cdf_at_thresholds("single", &[5.0], &[1.0, 10.0]);
    }
}
