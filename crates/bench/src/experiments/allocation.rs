//! Allocation-policy experiments: skylines (Figure 12) and the cost-saving
//! ratios over the whole suite (Figure 13 / Section 5.4).

use std::collections::BTreeMap;

use ae_engine::{AllocationPolicy, RunConfig};
use ae_ppm::curve::PerfCurve;
use ae_ppm::model::PpmKind;
use ae_ppm::selection::slowdown_config;
use ae_workload::ScaleFactor;
use autoexecutor::evaluation::{cross_validate, ratio_averages, CrossValidationConfig};
use autoexecutor::{compare_allocations, run_with_policy};

use crate::context::ExperimentContext;
use crate::table;

/// Figure 12: executor-allocation skylines for q94 under DA(1,48), SA(48),
/// SA(25), and the AutoExecutor rule requesting 25 executors.
pub fn fig12_skylines(ctx: &mut ExperimentContext) {
    table::section(
        "Figure 12",
        "Executor allocation skylines for q94, SF=100 (DA(1,48), SA(48), SA(25), Rule(25))",
    );
    let query = ctx.query("q94", ScaleFactor::SF100);
    let cluster = ctx.config.cluster;
    let run_cfg = RunConfig::default().with_seed(94);

    let policies: Vec<(&str, AllocationPolicy)> = vec![
        ("DA(1,48)", AllocationPolicy::dynamic(1, 48)),
        ("SA(48)", AllocationPolicy::static_allocation(48)),
        ("SA(25)", AllocationPolicy::static_allocation(25)),
        ("Rule(25)", AllocationPolicy::predictive(25)),
    ];

    let mut results = Vec::new();
    for (label, policy) in policies {
        let result =
            run_with_policy(&cluster, policy, "q94", &query.dag, &run_cfg).expect("run succeeds");
        results.push((label, result));
    }

    table::header(&["policy", "time (s)", "max execs", "AUC (exec-s)"]);
    for (label, result) in &results {
        table::row(&[
            (*label).to_string(),
            table::fmt(result.elapsed_secs, 1),
            result.max_executors.to_string(),
            table::fmt(result.auc_executor_secs, 0),
        ]);
    }

    println!("\nskylines (executors allocated, one sample per 10 s):");
    for (label, result) in &results {
        let samples: Vec<String> = result
            .skyline
            .sample(10.0)
            .into_iter()
            .map(|(_, n)| format!("{n:>2}"))
            .collect();
        println!("  {label:<9} {}", samples.join(" "));
    }
    println!(
        "paper: SA(25) vs SA(48) keeps the run time close while cutting peak executors 48 -> 25 and \
         AUC 1904 -> 1022; Rule(25) lags ~27 s behind SA(25) due to the allocation ramp but cuts AUC \
         vs DA(1,48) from 1250 to 729."
    );
}

/// Figure 13: per-query ratios of DA(1,48) and SA(48) to the AutoExecutor
/// rule for peak executors, AUC, and run time, plus the Section 5.4
/// aggregate savings.
pub fn fig13_allocation_ratios(ctx: &mut ExperimentContext) {
    table::section(
        "Figure 13",
        "DA(1,48)/Rule and SA(48)/Rule ratios over all SF=100 queries (AE_PL, H=1.05)",
    );

    // Predicted executor counts: AE_PL cross-validation test predictions with
    // the H=1.05 objective (one fold set, as in the paper).
    let data = ctx.training_data(ScaleFactor::SF100);
    let actuals = ctx.actuals(ScaleFactor::SF100);
    let counts = ctx.config.training_counts;
    let config = ctx.config.with_ppm_kind(PpmKind::PowerLaw);
    let cv = CrossValidationConfig {
        folds: 5,
        repeats: 1,
        seed: 42,
    };
    let report = cross_validate(&data, &actuals, &config, &cv, &counts).expect("cross-validation");
    let predicted_n: BTreeMap<String, usize> = report
        .mean_test_curves()
        .into_iter()
        .filter_map(|(name, curve)| {
            let dense = PerfCurve::from_samples(&curve).evaluate_integer_range(1, 48);
            slowdown_config(&dense, 1.05).map(|n| (name, n))
        })
        .collect();

    let suite = ctx.suite(ScaleFactor::SF100).to_vec();
    let run_cfg = RunConfig::default().with_seed(13);
    let mut comparisons = Vec::new();
    for query in &suite {
        let Some(&predicted) = predicted_n.get(&query.name) else {
            continue;
        };
        let comparison = compare_allocations(
            &ctx.config.cluster,
            &query.name,
            &query.dag,
            predicted,
            48,
            &run_cfg,
        )
        .expect("comparison succeeds");
        comparisons.push(comparison);
    }

    println!("per-query ratios (◆ marks queries that received their full predicted allocation):");
    table::header(&[
        "query",
        "pred n",
        "n SA/Rule",
        "n DA/Rule",
        "AUC SA/Rule",
        "AUC DA/Rule",
        "speedup SA",
        "speedup DA",
    ]);
    for comparison in &comparisons {
        let marker = if comparison.fully_allocated {
            "◆"
        } else {
            " "
        };
        table::row(&[
            format!("{}{}", comparison.name, marker),
            comparison.predicted_executors.to_string(),
            table::fmt(comparison.n_ratio_static(), 2),
            table::fmt(comparison.n_ratio_dynamic(), 2),
            table::fmt(comparison.auc_ratio_static(), 2),
            table::fmt(comparison.auc_ratio_dynamic(), 2),
            table::fmt(comparison.speedup_vs_static(), 2),
            table::fmt(comparison.speedup_vs_dynamic(), 2),
        ]);
    }

    let averages = ratio_averages(&comparisons);
    println!("\naggregates over {} queries:", comparisons.len());
    println!(
        "  mean n ratio      SA(48)/Rule = {:.1} (paper 3.5),  DA(1,48)/Rule = {:.1} (paper 2.6)",
        averages.n_ratio_static, averages.n_ratio_dynamic
    );
    println!(
        "  mean AUC ratio    SA(48)/Rule = {:.1} (paper 4.9),  DA(1,48)/Rule = {:.1} (paper 2.1)",
        averages.auc_ratio_static, averages.auc_ratio_dynamic
    );
    println!(
        "  mean speedup      vs SA(48) = {:.2} (paper ~0.84, i.e. 16% slowdown), vs DA = {:.2} (paper ~0.96)",
        averages.speedup_vs_static, averages.speedup_vs_dynamic
    );
    println!(
        "  total AUC saving  vs DA(1,48) = {:.0}% (paper 48%), vs SA(48) = {:.0}% (paper 73%)",
        averages.auc_saving_vs_dynamic * 100.0,
        averages.auc_saving_vs_static * 100.0
    );
    println!(
        "  fully-allocated queries: {:.0}% (paper: 55 of 103)",
        averages.fully_allocated_fraction * 100.0
    );
}
