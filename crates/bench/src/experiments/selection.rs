//! Configuration-selection experiments: bounded slowdown (Figure 10) and
//! elbow points (Figure 11).

use std::collections::BTreeMap;

use ae_ppm::model::PpmKind;
use ae_workload::ScaleFactor;
use autoexecutor::evaluation::{
    cross_validate, elbow_distribution, selection_impacts, sparklens_curves, CrossValidationConfig,
};

use crate::context::ExperimentContext;
use crate::table;

/// The slowdown budgets evaluated in Figure 10.
const H_VALUES: [f64; 6] = [1.0, 1.05, 1.1, 1.2, 1.5, 2.0];

/// Per-query run-time curves keyed by query name.
type CurvesByQuery = BTreeMap<String, Vec<(usize, f64)>>;

/// Builds the per-series prediction curves used by both selection figures:
/// Actual, Sparklens (S), and the cross-validated AE_PL / AE_AL test
/// predictions.
fn series_curves(ctx: &mut ExperimentContext) -> BTreeMap<&'static str, CurvesByQuery> {
    let data = ctx.training_data(ScaleFactor::SF100);
    let actuals = ctx.actuals(ScaleFactor::SF100);
    let counts = ctx.config.training_counts;
    let cv = CrossValidationConfig::default();

    let mut series: BTreeMap<&'static str, CurvesByQuery> = BTreeMap::new();
    let actual_curves: CurvesByQuery = actuals
        .names()
        .iter()
        .map(|name| ((*name).to_string(), actuals.curve(name).unwrap().to_vec()))
        .collect();
    series.insert("Actual", actual_curves);
    series.insert("S", sparklens_curves(&data));

    for kind in [PpmKind::PowerLaw, PpmKind::Amdahl] {
        let config = ctx.config.with_ppm_kind(kind);
        let report =
            cross_validate(&data, &actuals, &config, &cv, &counts).expect("cross-validation");
        series.insert(kind.label(), report.mean_test_curves());
    }
    series
}

/// Figure 10: bounded-slowdown configuration selection — actual slowdown and
/// selected executor count for each slowdown budget `H`.
pub fn fig10_bounded_slowdown(ctx: &mut ExperimentContext) {
    table::section(
        "Figure 10",
        "Bounded-slowdown selection: actual slowdown and executor counts (SF=100, CV test folds)",
    );
    let series = series_curves(ctx);
    let actuals = ctx.actuals(ScaleFactor::SF100);
    let range = (
        ctx.config.min_candidate_executors,
        ctx.config.max_candidate_executors,
    );

    println!("(a) mean actual slowdown vs target slowdown H");
    table::header(&["H", "S", "AE_PL", "AE_AL", "Actual"]);
    let impacts: BTreeMap<&str, Vec<autoexecutor::evaluation::SelectionImpact>> = series
        .iter()
        .map(|(label, curves)| {
            (
                *label,
                selection_impacts(curves, &actuals, &H_VALUES, range),
            )
        })
        .collect();
    for (idx, &h) in H_VALUES.iter().enumerate() {
        table::row(&[
            table::fmt(h, 2),
            table::fmt(impacts["S"][idx].mean_actual_slowdown, 3),
            table::fmt(impacts["AE_PL"][idx].mean_actual_slowdown, 3),
            table::fmt(impacts["AE_AL"][idx].mean_actual_slowdown, 3),
            table::fmt(impacts["Actual"][idx].mean_actual_slowdown, 3),
        ]);
    }

    println!("\n(b) mean selected executor count vs target slowdown H");
    table::header(&["H", "S", "AE_PL", "AE_AL", "Actual"]);
    for (idx, &h) in H_VALUES.iter().enumerate() {
        table::row(&[
            table::fmt(h, 2),
            table::fmt(impacts["S"][idx].mean_selected_executors, 1),
            table::fmt(impacts["AE_PL"][idx].mean_selected_executors, 1),
            table::fmt(impacts["AE_AL"][idx].mean_selected_executors, 1),
            table::fmt(impacts["Actual"][idx].mean_selected_executors, 1),
        ]);
    }
    println!(
        "paper at H=1: slowdown 5.4% (S), 5.5% (AE_PL), 8.9% (AE_AL); mean n = 24 (Actual), 32.9 (S), \
         21.5 (AE_PL), 48 (AE_AL -- no saturation term so it always picks the maximum)."
    );

    // Speedups over static small allocations for the H=1 selections (the
    // Section 5.3 text numbers).
    println!("\nspeedups of the H=1 selection over static allocations (geometric view omitted, arithmetic means):");
    for static_n in [2usize, 3, 8] {
        let mut speedups = Vec::new();
        for (name, curve) in &series["AE_PL"] {
            let Some(actual) = actuals.interpolated(name) else {
                continue;
            };
            let dense = ae_ppm::curve::PerfCurve::from_samples(curve)
                .evaluate_integer_range(range.0, range.1);
            let Some(selected) = ae_ppm::selection::slowdown_config(&dense, 1.0) else {
                continue;
            };
            speedups.push(actual.evaluate(static_n as f64) / actual.evaluate(selected as f64));
        }
        let mean = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
        println!(
            "  vs static n={static_n}: {:.2}x (paper: ~2.6-2.7x for n=2, ~1.7x for n=3, ~1.13x for n=8)",
            mean
        );
    }
}

/// Figure 11: distribution of elbow points over all queries.
pub fn fig11_elbow_points(ctx: &mut ExperimentContext) {
    table::section("Figure 11", "Elbow-point distribution (SF=100)");
    let series = series_curves(ctx);
    let range = (
        ctx.config.min_candidate_executors,
        ctx.config.max_candidate_executors,
    );

    table::header(&["series", "median", "mode", "share at mode", "min", "max"]);
    for (label, curves) in &series {
        let elbows = elbow_distribution(curves, range);
        let mut values: Vec<usize> = elbows.values().copied().collect();
        if values.is_empty() {
            continue;
        }
        values.sort_unstable();
        let median = values[values.len() / 2];
        let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
        for &v in &values {
            *histogram.entry(v).or_default() += 1;
        }
        let (&mode, &mode_count) = histogram
            .iter()
            .max_by_key(|&(_, c)| *c)
            .expect("non-empty");
        table::row(&[
            (*label).to_string(),
            median.to_string(),
            mode.to_string(),
            format!("{:.0}%", mode_count as f64 / values.len() as f64 * 100.0),
            values[0].to_string(),
            values[values.len() - 1].to_string(),
        ]);
    }
    println!(
        "paper: the vast majority of queries have an elbow at 8 executors (only 13 of 103 below 8 \
         for Actual); AE_AL always selects 7, AE_PL selects 8-10."
    );
}
