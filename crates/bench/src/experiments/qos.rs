//! Serving QoS: the per-level price-performance menu.
//!
//! The PixelsDB-style service levels sell three different points on each
//! query's *predicted* performance curve: `Interactive` buys a near-fastest
//! point, `Standard` a bounded-slowdown point, `BestEffort` the cheapest
//! executor-seconds point. This experiment trains the parameter model on
//! the default family, scores a representative slice of the suite through
//! the QoS-aware serving runtime at every level, and prints the resulting
//! menu: selected executors, predicted run time, executor-seconds price,
//! and the *derived* price multiplier over the best-effort anchor.
//!
//! (Latency under load is measured by the `bench_qos` binary, which drives
//! the runtime with tagged open-loop arrivals; this experiment is the
//! deterministic pricing view.)

use std::sync::Arc;

use ae_serve::{RuntimeConfig, ScoreRequest, ScoringRuntime, ServiceLevel};
use ae_workload::ScaleFactor;
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

use crate::context::ExperimentContext;
use crate::table;

/// Queries shown in the menu: a cheap scan-heavy one, a mid-size join, and
/// an expensive aggregation-heavy one (paper examples q1/q42/q88).
const MENU_QUERIES: [&str; 3] = ["q1", "q42", "q88"];

/// The `qos` experiment: per-level executor counts, predicted times,
/// prices, and multipliers over the default family at SF=10.
pub fn service_level_menu(ctx: &mut ExperimentContext) {
    table::section(
        "QoS",
        "service-level price menu (predicted curve -> deadline -> price)",
    );
    let config = ctx.config;
    let suite = ctx.suite(ScaleFactor::SF10).to_vec();
    let (_, model) = train_from_workload(&suite, &config).expect("training");
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("qos", model.to_portable("qos").unwrap())
        .unwrap();
    let runtime = ScoringRuntime::new(
        Arc::clone(&registry),
        "qos",
        RuntimeConfig::deterministic(&config),
    );
    let rewriter = Optimizer::with_default_rules();

    table::header(&[
        "query",
        "level",
        "executors",
        "pred time (s)",
        "price (ex-s)",
        "multiplier",
    ]);
    let mut multipliers = Vec::new();
    for name in MENU_QUERIES {
        let query = ctx.query(name, ScaleFactor::SF10);
        let plan = rewriter.optimize(query.plan.clone()).unwrap().plan;
        for level in [
            ServiceLevel::Interactive,
            ServiceLevel::Standard,
            ServiceLevel::BestEffort,
        ] {
            let outcome = runtime
                .submit(ScoreRequest::from_plan(&plan).with_level(level))
                .expect("menu scoring");
            let quote = outcome.quote().expect("non-empty predicted curve");
            table::row(&[
                name.to_string(),
                level.name().to_string(),
                quote.executors.to_string(),
                table::fmt(quote.predicted_seconds, 1),
                table::fmt(quote.price, 1),
                table::fmt(quote.multiplier, 2),
            ]);
            if level == ServiceLevel::Interactive {
                multipliers.push(quote.multiplier);
            }
        }
    }
    runtime.shutdown();
    let mean_multiplier = multipliers.iter().sum::<f64>() / multipliers.len().max(1) as f64;
    println!(
        "interactive promises cost {:.2}x best-effort on average over the menu; the \
         multiplier is derived per query from its predicted curve, not configured.",
        mean_multiplier
    );
    println!(
        "expected shape: interactive buys more executors at a superlinear price; standard \
         sits at the bounded-slowdown point; best-effort anchors the price at 1x."
    );
}
