//! The per-figure/table experiment harnesses.
//!
//! Each function regenerates the data series behind one table or figure of
//! the paper's evaluation and prints it in a paper-comparable form. The
//! `experiments` binary dispatches on the experiment id; `all` runs
//! everything in paper order.

use crate::context::ExperimentContext;

pub mod allocation;
pub mod generalization;
pub mod model_accuracy;
pub mod motivation;
pub mod qos;
pub mod selection;
pub mod workload_characteristics;

/// All experiment ids, in the order they appear in the paper.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "table1",
    "fig5",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "ablation",
    "overheads",
    "generalization",
    "qos",
];

/// Runs one experiment by id. Returns `false` for an unknown id.
pub fn run(id: &str, ctx: &mut ExperimentContext) -> bool {
    match id {
        "fig1" => workload_characteristics::fig1_runtime_and_auc(ctx),
        "fig2" => motivation::fig2_production_insights(),
        "fig3" => motivation::fig3_executor_counts(ctx),
        "fig4" => model_accuracy::fig4_ppm_fit_errors(ctx),
        "table1" => workload_characteristics::table1_configurations(),
        "fig5" => workload_characteristics::fig5_total_cores(ctx),
        "fig8" => model_accuracy::fig8_example_prediction(ctx),
        "fig9" => model_accuracy::fig9_cross_validation_errors(ctx),
        "fig10" => selection::fig10_bounded_slowdown(ctx),
        "fig11" => selection::fig11_elbow_points(ctx),
        "fig12" => allocation::fig12_skylines(ctx),
        "fig13" => allocation::fig13_allocation_ratios(ctx),
        "fig14" => model_accuracy::fig14_cross_scale_factor(ctx),
        "fig15" => model_accuracy::fig15_feature_importance(ctx),
        "ablation" => model_accuracy::ablation_feature_sets(ctx),
        "overheads" => model_accuracy::overheads(ctx),
        "generalization" => generalization::cross_family_matrix(ctx),
        "qos" => qos::service_level_menu(ctx),
        _ => return false,
    }
    true
}
