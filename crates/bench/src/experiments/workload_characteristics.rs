//! Figure 1, Table 1 and Figure 5: price-performance behaviour of the
//! workload on the simulated cluster, and the total-cores study.

use ae_engine::{AllocationPolicy, ClusterConfig, RunConfig, Simulator};
use ae_ml::metrics::iqr_filtered_mean;
use ae_ppm::curve::PerfCurve;
use ae_workload::ScaleFactor;

use crate::context::ExperimentContext;
use crate::table;

/// Figure 1: average run time and executor occupancy (AUC) for q94, SF=100,
/// across executor counts.
pub fn fig1_runtime_and_auc(ctx: &mut ExperimentContext) {
    table::section(
        "Figure 1",
        "Run time and executor-occupancy AUC vs executor count (q94, SF=100)",
    );
    let query = ctx.query("q94", ScaleFactor::SF100);
    let cluster = ctx.config.cluster;
    table::header(&["executors", "time (s)", "AUC (exec-s)"]);
    for n in [1usize, 3, 8, 16, 24, 32, 40, 48] {
        let simulator =
            Simulator::new(cluster, AllocationPolicy::static_allocation(n)).expect("valid cluster");
        let mut times = Vec::new();
        let mut aucs = Vec::new();
        for repeat in 0..3u64 {
            let result = query_run(&simulator, &query.dag, "q94", repeat);
            times.push(result.0);
            aucs.push(result.1);
        }
        table::row(&[
            n.to_string(),
            table::fmt(iqr_filtered_mean(&times), 1),
            table::fmt(iqr_filtered_mean(&aucs), 0),
        ]);
    }
    println!(
        "paper shape: time drops steeply then plateaus; AUC keeps rising (507 -> 2575 exec-s)."
    );
}

fn query_run(
    simulator: &Simulator,
    dag: &ae_engine::StageDag,
    name: &str,
    seed: u64,
) -> (f64, f64) {
    let result = simulator.run(name, dag, &RunConfig::default().with_seed(seed));
    (result.elapsed_secs, result.auc_executor_secs)
}

/// Table 1: the (cores/executor, executors, total cores) configuration grid.
pub fn table1_configurations_experiment_rows() -> Vec<(usize, usize, usize)> {
    ae_ppm::cores::table1_configurations()
}

/// Table 1 printed in paper form.
pub fn table1_configurations() {
    table::section("Table 1", "Configurations for the total-cores study");
    table::header(&["cores/executor", "executors", "total cores"]);
    for (ec, n, k) in table1_configurations_experiment_rows() {
        table::row(&[ec.to_string(), n.to_string(), k.to_string()]);
    }
}

/// Figure 5: run time vs total cores for q94 and q69 grouped by
/// cores-per-executor, and the distribution of relative errors when
/// estimating ec≠4 configurations from the ec=4 trend.
pub fn fig5_total_cores(ctx: &mut ExperimentContext) {
    table::section(
        "Figure 5",
        "Impact of total cores k = n x ec (q94, q69 detail; error CDF over all queries)",
    );
    let configs = table1_configurations_experiment_rows();

    for name in ["q94", "q69"] {
        let query = ctx.query(name, ScaleFactor::SF100);
        println!("\n{name}, SF=100:");
        table::header(&["cores/executor", "executors", "total cores", "time (s)"]);
        for &(ec, n, k) in &configs {
            let time = run_with_ec(&ctx.config.cluster, ec, n, &query.dag, name);
            table::row(&[
                ec.to_string(),
                n.to_string(),
                k.to_string(),
                table::fmt(time, 1),
            ]);
        }
    }

    // (c) Relative estimation error of ec != 4 configurations against linear
    // interpolation over the ec = 4 series, over the whole suite.
    println!("\n(c) relative estimation error for ec != 4 configs (all queries, SF=100)");
    let suite = ctx.suite(ScaleFactor::SF100).to_vec();
    let mut errors_pct = Vec::new();
    for query in &suite {
        // Reference series: ec = 4 over its total-core grid.
        let reference: Vec<(usize, f64)> = configs
            .iter()
            .filter(|&&(ec, _, _)| ec == 4)
            .map(|&(ec, n, k)| {
                (
                    k,
                    run_with_ec(&ctx.config.cluster, ec, n, &query.dag, &query.name),
                )
            })
            .collect();
        let reference_curve = PerfCurve::from_samples(&reference);
        for &(ec, n, k) in configs.iter().filter(|&&(ec, _, _)| ec != 4) {
            let actual = run_with_ec(&ctx.config.cluster, ec, n, &query.dag, &query.name);
            let estimated = reference_curve.evaluate(k as f64);
            errors_pct.push((1.0 - actual / estimated) * 100.0);
        }
    }
    let abs_mean = errors_pct.iter().map(|e| e.abs()).sum::<f64>() / errors_pct.len().max(1) as f64;
    let within10 = errors_pct.iter().filter(|e| e.abs() <= 10.0).count() as f64
        / errors_pct.len().max(1) as f64
        * 100.0;
    let within20 = errors_pct.iter().filter(|e| e.abs() <= 20.0).count() as f64
        / errors_pct.len().max(1) as f64
        * 100.0;
    table::cdf_summary("relative error (%)", &errors_pct, 1);
    println!(
        "mean |error| = {abs_mean:.1}% (paper: 8.8%); within +-10%: {within10:.1}% (paper: 68.4%); \
         within +-20%: {within20:.1}% (paper: 92.9%)"
    );
}

fn run_with_ec(
    base_cluster: &ClusterConfig,
    ec: usize,
    n: usize,
    dag: &ae_engine::StageDag,
    name: &str,
) -> f64 {
    let cluster = (*base_cluster).with_cores_per_executor(ec);
    let simulator =
        Simulator::new(cluster, AllocationPolicy::static_allocation(n)).expect("valid cluster");
    simulator
        .run(name, dag, &RunConfig::deterministic())
        .elapsed_secs
}
