//! Section 2 motivation figures: production-workload insights (Figure 2)
//! and executor-count distributions (Figure 3).

use ae_workload::{ProductionWorkload, ProductionWorkloadConfig, ScaleFactor};

use crate::context::ExperimentContext;
use crate::table;

/// Figure 2: queries per application, per-application variation, and
/// concurrent applications, from the synthetic production telemetry.
pub fn fig2_production_insights() {
    table::section(
        "Figure 2",
        "Insights from (synthetic) production Spark workloads",
    );
    let workload = ProductionWorkload::generate(&ProductionWorkloadConfig::default());
    println!(
        "telemetry: {} applications, {} queries",
        workload.applications.len(),
        workload.total_queries()
    );

    println!("\n(a) queries per application — paper: >60% of apps run more than one query");
    let queries_per_app = workload.queries_per_application();
    let multi = queries_per_app.iter().filter(|&&q| q > 1.0).count() as f64
        / queries_per_app.len() as f64
        * 100.0;
    table::cdf_summary("queries/application", &queries_per_app, 0);
    table::cdf_at_thresholds(
        "queries/application",
        &queries_per_app,
        &[1.0, 10.0, 100.0, 1000.0],
    );
    println!("applications with >1 query: {multi:.0}%");

    println!("\n(b) coefficient of variation within applications (multi-query apps)");
    println!("    paper medians: operator counts >=20%, rows processed >=40%, query times >=60%");
    let (rows, times, ops) = workload.variation_cdfs();
    table::cdf_summary("rows processed CoV (%)", &rows, 0);
    table::cdf_summary("query times CoV (%)", &times, 0);
    table::cdf_summary("operator counts CoV (%)", &ops, 0);

    println!("\n(c) maximum concurrent applications per cluster — paper: ~70% do not share");
    let concurrency = workload.concurrent_applications();
    let alone =
        concurrency.iter().filter(|&&c| c <= 1.0).count() as f64 / concurrency.len() as f64 * 100.0;
    table::cdf_summary("concurrent applications", &concurrency, 0);
    println!("applications running alone on their cluster: {alone:.0}%");
}

/// Figure 3: dynamic-allocation ranges, static allocations, and optimal
/// executor counts for the TPC-DS-like suite.
pub fn fig3_executor_counts(ctx: &mut ExperimentContext) {
    table::section(
        "Figure 3",
        "Executor counts in production workloads and optimal counts for TPC-DS",
    );
    let workload = ProductionWorkload::generate(&ProductionWorkloadConfig::default());

    println!("(a) non-default dynamic-allocation ranges — paper: ~60% have a range of just 2");
    println!(
        "dynamic allocation enabled: {:.0}% of applications (paper: 59%)",
        workload.dynamic_allocation_fraction() * 100.0
    );
    let ranges = workload.non_default_da_ranges();
    table::cdf_summary("DA range width", &ranges, 0);
    table::cdf_at_thresholds("DA range width", &ranges, &[2.0, 8.0, 32.0, 64.0]);

    println!(
        "\n(b) static allocations of apps without dynamic allocation — paper: ~80% use 2 executors"
    );
    let (executors, cores) = workload.static_allocations();
    table::cdf_summary("executor instances", &executors, 0);
    table::cdf_at_thresholds("executor instances", &executors, &[2.0, 8.0, 128.0, 2048.0]);
    table::cdf_summary("total cores", &cores, 0);

    println!("\n(c) optimal executor counts for TPC-DS queries — paper: spread from 1 to 48, SF-dependent");
    for sf in [ScaleFactor::SF10, ScaleFactor::SF100] {
        let actuals = ctx.actuals(sf);
        let optima: Vec<f64> = actuals
            .names()
            .iter()
            .filter_map(|name| actuals.optimal_executors(name))
            .map(|n| n as f64)
            .collect();
        table::cdf_summary(&format!("optimal executors {sf}"), &optima, 0);
        table::cdf_at_thresholds(
            &format!("optimal executors {sf}"),
            &optima,
            &[1.0, 8.0, 16.0, 32.0, 48.0],
        );
    }
}
