//! Model-accuracy experiments: Figures 4, 8, 9, 14, 15, the Section 5.7
//! feature ablation and the Section 5.6 overheads.

use std::collections::BTreeMap;

use ae_engine::{AllocationPolicy, RunConfig, Simulator};
use ae_ml::importance::permutation_importance;
use ae_ml::metrics::total_absolute_error_ratio;
use ae_ppm::model::PpmKind;
use ae_sparklens::SparklensAnalyzer;
use ae_workload::ScaleFactor;
use autoexecutor::evaluation::{
    cross_validate, error_by_count, fitted_ppm_curves, sparklens_curves, ActualRuns,
    CrossValidationConfig,
};
use autoexecutor::{measure_overheads, FeatureSet, ParameterModel, TrainingData};

use crate::context::ExperimentContext;
use crate::table;

/// Executor counts at which Figure 4 evaluates the PPM fit error.
const FIG4_COUNTS: [usize; 9] = [1, 3, 8, 12, 16, 19, 24, 32, 48];

/// Figure 4: how well AE_PL and AE_AL fit the Sparklens estimates, per
/// executor count, over all SF=100 queries.
pub fn fig4_ppm_fit_errors(ctx: &mut ExperimentContext) {
    table::section(
        "Figure 4",
        "PPM fit error vs Sparklens estimates (all queries, SF=100)",
    );
    let suite = ctx.suite(ScaleFactor::SF100).to_vec();
    let analyzer = SparklensAnalyzer::paper_default();
    let simulator = Simulator::new(
        ctx.config.cluster,
        AllocationPolicy::static_allocation(ctx.config.training_run_executors),
    )
    .expect("valid cluster");

    // Per-query Sparklens estimates at the extended count grid, plus PPM fits
    // on the training-count subset (the procedure of Section 3.4).
    let mut sparklens_by_query: BTreeMap<String, Vec<(usize, f64)>> = BTreeMap::new();
    let mut pl_by_query: BTreeMap<String, Vec<(usize, f64)>> = BTreeMap::new();
    let mut al_by_query: BTreeMap<String, Vec<(usize, f64)>> = BTreeMap::new();
    for query in &suite {
        let run = simulator.run(
            &query.name,
            &query.dag,
            &RunConfig::deterministic().with_task_log(),
        );
        let log = run.task_log.expect("task log requested");
        let estimates = analyzer.estimate_from_log(&log, &FIG4_COUNTS);
        let training_curve: Vec<(usize, f64)> = estimates
            .iter()
            .filter(|(n, _)| ctx.config.training_counts.contains(n))
            .copied()
            .collect();
        let pl = ae_ppm::fit::fit_power_law(&training_curve).expect("fit succeeds");
        let al = ae_ppm::fit::fit_amdahl(&training_curve).expect("fit succeeds");
        pl_by_query.insert(
            query.name.clone(),
            FIG4_COUNTS
                .iter()
                .map(|&n| (n, pl.predict(n as f64)))
                .collect(),
        );
        al_by_query.insert(
            query.name.clone(),
            FIG4_COUNTS
                .iter()
                .map(|&n| (n, al.predict(n as f64)))
                .collect(),
        );
        sparklens_by_query.insert(query.name.clone(), estimates);
    }

    table::header(&["executors", "AE_PL error", "AE_AL error"]);
    for &n in &FIG4_COUNTS {
        let collect = |curves: &BTreeMap<String, Vec<(usize, f64)>>| -> Vec<f64> {
            curves
                .values()
                .filter_map(|curve| curve.iter().find(|&&(c, _)| c == n).map(|&(_, t)| t))
                .collect()
        };
        let reference = collect(&sparklens_by_query);
        let pl_error = total_absolute_error_ratio(&collect(&pl_by_query), &reference);
        let al_error = total_absolute_error_ratio(&collect(&al_by_query), &reference);
        table::row(&[
            n.to_string(),
            table::fmt(pl_error, 3),
            table::fmt(al_error, 3),
        ]);
    }
    println!("paper shape: AE_AL fits Sparklens better for n < 32, AE_PL beyond; both <= ~0.16.");
}

/// Figure 8: predicted vs Sparklens vs actual run-time curves for q94 when
/// q94 is held out of training.
pub fn fig8_example_prediction(ctx: &mut ExperimentContext) {
    table::section(
        "Figure 8",
        "Sparklens estimates, AE_PL / AE_AL predictions, and actual run times (q94, SF=100, held out)",
    );
    let data = ctx.training_data(ScaleFactor::SF100);
    let actuals = ctx.actuals(ScaleFactor::SF100);

    let holdout_idx = data
        .examples
        .iter()
        .position(|e| e.name == "q94")
        .expect("q94 in suite");
    let train_indices: Vec<usize> = (0..data.len()).filter(|&i| i != holdout_idx).collect();
    let train_data = data.subset(&train_indices);

    let pl_model = ParameterModel::train(&train_data, &ctx.config.with_ppm_kind(PpmKind::PowerLaw))
        .expect("training succeeds");
    let al_model = ParameterModel::train(&train_data, &ctx.config.with_ppm_kind(PpmKind::Amdahl))
        .expect("training succeeds");

    let q94 = ctx.query("q94", ScaleFactor::SF100);
    let counts = ctx.config.training_counts;
    let pl_curve = pl_model
        .predict_curve(&q94.plan, &counts)
        .expect("prediction");
    let al_curve = al_model
        .predict_curve(&q94.plan, &counts)
        .expect("prediction");
    let sparklens = &data.examples[holdout_idx].sparklens_curve;
    let actual = actuals.curve("q94").expect("q94 measured");

    table::header(&["executors", "S (s)", "AE_PL (s)", "AE_AL (s)", "Actual (s)"]);
    for (i, &n) in counts.iter().enumerate() {
        table::row(&[
            n.to_string(),
            table::fmt(sparklens[i].1, 1),
            table::fmt(pl_curve[i].1, 1),
            table::fmt(al_curve[i].1, 1),
            table::fmt(actual[i].1, 1),
        ]);
    }
    println!(
        "paper shape: curves differ at small n but converge at larger n; overall shapes match."
    );
}

/// Figure 9: E(n) for the training (fit) and testing (prediction) datasets
/// under 10-repeated 5-fold cross-validation, with the Sparklens reference.
pub fn fig9_cross_validation_errors(ctx: &mut ExperimentContext) {
    table::section(
        "Figure 9",
        "E(n) under 10-repeated 5-fold cross-validation (SF=100)",
    );
    let data = ctx.training_data(ScaleFactor::SF100);
    let actuals = ctx.actuals(ScaleFactor::SF100);
    let counts = ctx.config.training_counts;
    let cv = CrossValidationConfig::default();

    let sparklens_error = error_by_count(&sparklens_curves(&data), &actuals, &counts);

    for kind in [PpmKind::PowerLaw, PpmKind::Amdahl] {
        let config = ctx.config.with_ppm_kind(kind);
        let report =
            cross_validate(&data, &actuals, &config, &cv, &counts).expect("cross-validation");
        let train = report.train_error_summary();
        let test = report.test_error_summary();
        println!("\n{} ({} folds):", kind.label(), report.folds.len());
        table::header(&[
            "executors",
            "S",
            "train mean",
            "train std",
            "test mean",
            "test std",
        ]);
        for &n in &counts {
            let (train_mean, train_std) = train.get(&n).copied().unwrap_or((f64::NAN, f64::NAN));
            let (test_mean, test_std) = test.get(&n).copied().unwrap_or((f64::NAN, f64::NAN));
            table::row(&[
                n.to_string(),
                table::fmt(sparklens_error.get(&n).copied().unwrap_or(f64::NAN), 3),
                table::fmt(train_mean, 3),
                table::fmt(train_std, 3),
                table::fmt(test_mean, 3),
                table::fmt(test_std, 3),
            ]);
        }
    }
    println!(
        "paper shape: errors largest at small n, smallest at intermediate n; model errors close to \
         Sparklens (mean |gap| 0.079 for AE_PL, 0.094 for AE_AL)."
    );
}

/// Figure 14: generalization across scale factors — train at one SF, test at
/// the other, with Sparklens references from both SFs.
pub fn fig14_cross_scale_factor(ctx: &mut ExperimentContext) {
    table::section(
        "Figure 14",
        "E(n) when training and testing scale factors differ",
    );
    let counts = ctx.config.training_counts;
    let data_sf10 = ctx.training_data(ScaleFactor::SF10);
    let data_sf100 = ctx.training_data(ScaleFactor::SF100);
    let suites: Vec<(ScaleFactor, TrainingData, TrainingData)> = vec![
        // (test SF, training data from the other SF, training data from the same SF)
        (ScaleFactor::SF10, data_sf100.clone(), data_sf10.clone()),
        (ScaleFactor::SF100, data_sf10, data_sf100),
    ];

    for (test_sf, train_data_other_sf, same_sf_data) in suites {
        let actuals = ctx.actuals(test_sf);
        let test_suite = ctx.suite(test_sf).to_vec();
        println!("\ntesting dataset: {test_sf} (training dataset: the other scale factor)");

        // Sparklens references: estimates obtained at SF=10 and at SF=100.
        let s_same = error_by_count(&sparklens_curves(&same_sf_data), &actuals, &counts);
        let s_other = error_by_count(&sparklens_curves(&train_data_other_sf), &actuals, &counts);

        let mut model_errors: BTreeMap<&'static str, BTreeMap<usize, f64>> = BTreeMap::new();
        for kind in [PpmKind::PowerLaw, PpmKind::Amdahl] {
            let config = ctx.config.with_ppm_kind(kind);
            let model =
                ParameterModel::train(&train_data_other_sf, &config).expect("training succeeds");
            let predictions: BTreeMap<String, Vec<(usize, f64)>> = test_suite
                .iter()
                .map(|q| {
                    let curve = model.predict_curve(&q.plan, &counts).expect("prediction");
                    (q.name.clone(), curve)
                })
                .collect();
            model_errors.insert(
                kind.label(),
                error_by_count(&predictions, &actuals, &counts),
            );
        }

        let (s_10, s_100) = if test_sf == ScaleFactor::SF10 {
            (&s_same, &s_other)
        } else {
            (&s_other, &s_same)
        };
        table::header(&["executors", "S_10", "S_100", "AE_PL", "AE_AL"]);
        for &n in &counts {
            let get = |m: &BTreeMap<usize, f64>| m.get(&n).copied().unwrap_or(f64::NAN);
            table::row(&[
                n.to_string(),
                table::fmt(get(s_10), 3),
                table::fmt(get(s_100), 3),
                table::fmt(get(&model_errors["AE_PL"]), 3),
                table::fmt(get(&model_errors["AE_AL"]), 3),
            ]);
        }
    }
    println!(
        "paper shape: error trends resemble the same-SF case (larger at small n); size-aware model \
         predictions can beat the cross-SF Sparklens reference because Sparklens ignores data-size \
         changes."
    );
}

/// Figure 15: top-10 features by permutation importance, summed over the
/// AE_PL and AE_AL models.
pub fn fig15_feature_importance(ctx: &mut ExperimentContext) {
    table::section("Figure 15", "Permutation feature importance (SF=100)");
    let data = ctx.training_data(ScaleFactor::SF100);

    let mut merged: Option<ae_ml::importance::ImportanceReport> = None;
    let mut per_kind: BTreeMap<&'static str, Vec<(String, f64)>> = BTreeMap::new();
    for kind in [PpmKind::PowerLaw, PpmKind::Amdahl] {
        let dataset = data
            .to_dataset(kind, FeatureSet::F0)
            .expect("dataset conversion");
        let config = ctx.config.with_ppm_kind(kind);
        let model = ParameterModel::train_on_dataset(&dataset, kind, FeatureSet::F0, config.forest)
            .expect("training succeeds");
        let report =
            permutation_importance(model.forest(), &dataset, 30, 7).expect("importance succeeds");
        per_kind.insert(kind.label(), report.top_k(10));
        match merged.as_mut() {
            Some(m) => m.merge_sum(&report),
            None => merged = Some(report),
        }
    }

    let merged = merged.expect("two reports merged");
    println!("top 10 features by summed AE_PL + AE_AL importance:");
    table::header(&["rank", "feature", "summed score"]);
    for (rank, (name, score)) in merged.top_k(10).into_iter().enumerate() {
        table::row(&[(rank + 1).to_string(), name, table::fmt(score, 3)]);
    }
    for (label, top) in per_kind {
        let names: Vec<String> = top.into_iter().take(5).map(|(n, _)| n).collect();
        println!("{label} top-5: {}", names.join(", "));
    }
    println!(
        "paper ranking: TotalInputBytes, TotalRowsProcessed, MaxDepth, NumOps, Project, Filter, \
         Aggregate, Sort, Union, NumInputs."
    );
}

/// Section 5.7: feature-set ablation (F0–F3) measured as E(n) on the test
/// folds of a cross-validation.
pub fn ablation_feature_sets(ctx: &mut ExperimentContext) {
    table::section(
        "Section 5.7",
        "Feature-set ablation: E(n) for F0-F3 (test folds, SF=100)",
    );
    let data = ctx.training_data(ScaleFactor::SF100);
    let actuals = ctx.actuals(ScaleFactor::SF100);
    let counts = [8usize, 16, 32];
    let cv = CrossValidationConfig {
        folds: 5,
        repeats: 5,
        seed: 13,
    };

    for kind in [PpmKind::PowerLaw, PpmKind::Amdahl] {
        println!("\n{}:", kind.label());
        table::header(&["feature set", "E(8)", "E(16)", "E(32)"]);
        for set in FeatureSet::ALL {
            let config = ctx.config.with_ppm_kind(kind).with_feature_set(set);
            let report =
                cross_validate(&data, &actuals, &config, &cv, &counts).expect("cross-validation");
            let summary = report.test_error_summary();
            table::row(&[
                set.label().to_string(),
                table::fmt(summary.get(&8).map(|&(m, _)| m).unwrap_or(f64::NAN), 3),
                table::fmt(summary.get(&16).map(|&(m, _)| m).unwrap_or(f64::NAN), 3),
                table::fmt(summary.get(&32).map(|&(m, _)| m).unwrap_or(f64::NAN), 3),
            ]);
        }
    }
    println!(
        "paper at n=8: F0 0.27 / F1 0.26 / F2 0.35 / F3 0.31 for AE_PL (F1 close to F0; F2, F3 worse)."
    );
}

/// Section 5.6: training and scoring overheads.
pub fn overheads(ctx: &mut ExperimentContext) {
    table::section("Section 5.6", "Training and scoring overheads");
    let data = ctx.training_data(ScaleFactor::SF100);
    let suite = ctx.suite(ScaleFactor::SF100).to_vec();
    let report = measure_overheads(&suite, &data, &ctx.config).expect("overhead measurement");

    println!(
        "training queries:               {}",
        report.training_queries
    );
    println!(
        "PPM fit per training point:     {:.4} ms   (paper: ~0.3 ms)",
        report.ppm_fit_per_point.as_secs_f64() * 1e3
    );
    println!(
        "parameter-model training:       {:.1} ms   (paper: ~79 ms)",
        report.forest_training.as_secs_f64() * 1e3
    );
    println!(
        "portable model size:            {:.2} MB   (paper: ~1 MB ONNX)",
        report.portable_model_bytes as f64 / 1e6
    );
    println!(
        "plan featurization per query:   {:.3} ms   (paper: ~10.3 ms)",
        report.featurization_per_query.as_secs_f64() * 1e3
    );
    println!(
        "model load (one-time):          {:.1} ms   (paper: ~88.1 ms)",
        report.model_load.as_secs_f64() * 1e3
    );
    println!(
        "scoring-session setup:          {:.1} ms   (paper: ~47.1 ms)",
        report.session_setup.as_secs_f64() * 1e3
    );
    println!(
        "inference per query:            {:.3} ms   (paper: ~0.9 ms ONNX / ~3.6 ms scikit-learn)",
        report.inference_per_query.as_secs_f64() * 1e3
    );
}

/// Helper exposed for ActualRuns-based experiments that need a reference to
/// this module's fig-4 count grid.
pub fn fig4_counts() -> &'static [usize] {
    &FIG4_COUNTS
}

/// Re-exported so integration tests can exercise the same path cheaply.
pub fn sparklens_reference_error(
    data: &TrainingData,
    actuals: &ActualRuns,
    counts: &[usize],
) -> BTreeMap<usize, f64> {
    error_by_count(&sparklens_curves(data), actuals, counts)
}

/// Fitted-PPM curves helper kept public for the selection experiments.
pub fn fitted_curves(
    data: &TrainingData,
    kind: PpmKind,
    counts: &[usize],
) -> BTreeMap<String, Vec<(usize, f64)>> {
    fitted_ppm_curves(data, kind, counts)
}
