//! Cross-family generalization: train the parameter model on one workload
//! family, score every other family, and report the full train × test
//! accuracy matrix.
//!
//! This is the paper's "predicts unseen queries" claim stressed across
//! *workload families* rather than across held-out queries of the same
//! suite: TPC-DS-like (deep, aggregation-heavy), TPC-H-like (shallow,
//! scan/join-heavy), and the skew-adversarial suite (heavy tails,
//! stragglers, extreme elbows). Off-diagonal cells show what accuracy
//! transfer costs; the gap between them and the diagonal is the measured
//! cross-family generalization gap.

use ae_workload::{BuiltinFamily, ScaleFactor};
use autoexecutor::evaluation::{generalization_matrix, FamilyEvalSet, GeneralizationMatrix};

use crate::context::ExperimentContext;
use crate::table;

/// Builds the per-family evaluation bundles (suite, training data, ground
/// truth) for every builtin family at one scale factor, via the context's
/// caches.
pub fn family_eval_sets(ctx: &mut ExperimentContext, sf: ScaleFactor) -> Vec<FamilyEvalSet> {
    BuiltinFamily::ALL
        .into_iter()
        .map(|family| FamilyEvalSet {
            family: family.key().to_string(),
            suite: ctx.suite_for(family, sf).to_vec(),
            data: ctx.training_data_for(family, sf),
            actuals: ctx.actuals_for(family, sf),
        })
        .collect()
}

/// Prints a generalization matrix as a train-rows × test-columns table of
/// mean `E(n)` values.
pub fn print_matrix(matrix: &GeneralizationMatrix) {
    let mut header = vec!["train \\ test".to_string()];
    header.extend(matrix.families.iter().cloned());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    table::header(&header_refs);
    for train in &matrix.families {
        let mut row = vec![train.clone()];
        for test in &matrix.families {
            let cell = matrix.cell(train, test).expect("cell present");
            row.push(table::fmt(cell.mean_error, 3));
        }
        table::row(&row);
    }
    println!(
        "cross-family generalization gap (mean off-diagonal - mean diagonal): {}",
        table::fmt(matrix.generalization_gap(), 3)
    );
}

/// The `generalization` experiment: full matrix over the three builtin
/// families at SF=10, evaluated at the training counts.
pub fn cross_family_matrix(ctx: &mut ExperimentContext) {
    table::section(
        "Generalization",
        "train-family x test-family mean E(n) (all builtin families, SF=10)",
    );
    let counts = ctx.config.training_counts;
    let sets = family_eval_sets(ctx, ScaleFactor::SF10);
    let config = ctx.config;
    let matrix = generalization_matrix(&sets, &config, &counts).expect("generalization matrix");
    print_matrix(&matrix);
    println!(
        "expected shape: diagonal lowest; tpcds<->tpch transfer moderate; the skew row/column \
         worst (heavy tails and extreme elbows are out of distribution for both benchmarks)."
    );
}
