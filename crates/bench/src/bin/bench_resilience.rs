//! Fleet resilience benchmark: goodput retained through a shard kill,
//! time-to-quarantine, time-to-recover, and zero-lost-ticket accounting
//! at 2/4/8 shards.
//!
//! **Measurement model.** Resilience is inherently live: detection,
//! failover, evacuation, and probationary recovery are interactions
//! between the health monitor, the routing ring, and in-flight traffic,
//! so this bench drives a closed-loop client against a live fleet and
//! walks one full failure lifecycle per fleet size:
//!
//! ```text
//! pre-fault ──▶ kill victim (induced crash) ──▶ quarantine detected
//!    │ qps          │ goodput (failover rescues)      │ time-to-quarantine
//!    ▼              ▼                                  ▼
//! post-recovery ◀── probation re-admission ◀── fault cleared
//!    qps               time-to-recover
//! ```
//!
//! A batch of detached tickets rides through the kill window; every one
//! must resolve — the zero-lost-tickets invariant. The closed loop keeps
//! at most one request in flight per client, so measured qps is honest
//! round-trip throughput on this 1-core container, not queue-depth
//! artifacts.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ae-bench --bin bench_resilience               # full run
//! cargo run --release -p ae-bench --bin bench_resilience -- --smoke    # CI gate
//! cargo run --release -p ae-bench --bin bench_resilience -- --json BENCH_resilience.json
//! ```
//!
//! `--smoke` shortens the run and exits non-zero unless, killing 1 of 4
//! shards: no ticket is lost at any fleet size, surviving goodput stays
//! at or above 60% of the pre-kill rate, and probation re-admits the
//! revived shard (finite time-to-recover).

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ae_serve::{
    FleetConfig, HealthPolicy, InducedFault, RuntimeConfig, ScoreRequest, ServiceLevel,
    ShardedRuntime, TenantId,
};
use ae_workload::{FamilyRegistry, QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

struct Args {
    smoke: bool,
    shards: Vec<usize>,
    requests: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        shards: vec![2, 4, 8],
        requests: 8_000,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--shards" => {
                let list = it.next().expect("--shards needs a comma-separated list");
                args.shards = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--shards needs numbers"))
                    .collect();
            }
            "--requests" => {
                args.requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a number");
            }
            "--json" => args.json = it.next(),
            other => panic!("unknown argument: {other}"),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(2_000);
    }
    args
}

const TENANTS: u64 = 64;

/// The health/failover policy the lifecycle runs under: fast detection
/// (2 ms checks), a short quarantine hold, and an ample retry budget so
/// the failover path — not budget exhaustion — is what's measured. The
/// stall watchdog is parked: on a 1-core host a briefly descheduled
/// healthy shard must not add spurious quarantines to the timing.
fn lifecycle_policy() -> HealthPolicy {
    HealthPolicy::default()
        .with_check_interval(Duration::from_millis(2))
        .with_error_rate(0.5, 4)
        .with_stall_watchdog(1 << 20, 1 << 20)
        .with_quarantine_hold(Duration::from_millis(20))
        .with_probation(4, 8, 2)
        .with_retry_budget(1_000_000, 500_000.0)
}

fn shard_runtime(config: &AutoExecutorConfig) -> RuntimeConfig {
    RuntimeConfig::from_auto_executor(config)
        .with_workers(1)
        .with_max_batch(8)
        .with_batch_window(Duration::ZERO)
        .with_inline_when_idle(false)
        .with_queue_capacity(4096)
}

/// One closed-loop load phase: `count` synchronous submissions across
/// the tenant space and three service levels.
struct Phase {
    ok: u64,
    err: u64,
    /// Best sustained goodput over the phase's sub-chunks: the
    /// steady-state rate, insensitive to transient scheduler stalls on a
    /// loaded 1-core host (phase-to-phase whole-window qps varies ±20%
    /// here; peak-of-chunks is the comparable number).
    peak_qps: f64,
}

fn drive(fleet: &ShardedRuntime, features: &[Vec<f64>], count: usize, offset: usize) -> Phase {
    const CHUNKS: usize = 8;
    let chunk_size = (count / CHUNKS).max(1);
    let mut ok = 0u64;
    let mut err = 0u64;
    let mut peak_qps = 0.0f64;
    let mut i = offset;
    let end = offset + count;
    while i < end {
        let chunk_end = (i + chunk_size).min(end);
        let chunk_start = Instant::now();
        let mut chunk_ok = 0u64;
        for j in i..chunk_end {
            let request = ScoreRequest::from_features(features[j % features.len()].clone())
                .with_tenant(TenantId(j as u64 % TENANTS))
                .with_level(ServiceLevel::from_index(j % 3).unwrap());
            match fleet.submit(request) {
                Ok(_) => {
                    ok += 1;
                    chunk_ok += 1;
                }
                Err(_) => err += 1,
            }
        }
        peak_qps = peak_qps.max(chunk_ok as f64 / chunk_start.elapsed().as_secs_f64().max(1e-9));
        i = chunk_end;
    }
    Phase { ok, err, peak_qps }
}

/// Drives load in small chunks until `condition` holds (or the deadline
/// passes), returning the elapsed wall time and the phase tallies.
fn drive_until(
    fleet: &ShardedRuntime,
    features: &[Vec<f64>],
    offset: &mut usize,
    deadline: Duration,
    mut condition: impl FnMut() -> bool,
) -> (Option<Duration>, Phase) {
    let start = Instant::now();
    let mut ok = 0u64;
    let mut err = 0u64;
    loop {
        if condition() {
            return (
                Some(start.elapsed()),
                Phase {
                    ok,
                    err,
                    peak_qps: 0.0,
                },
            );
        }
        if start.elapsed() >= deadline {
            return (
                None,
                Phase {
                    ok,
                    err,
                    peak_qps: 0.0,
                },
            );
        }
        let chunk = drive(fleet, features, 16, *offset);
        *offset += 16;
        ok += chunk.ok;
        err += chunk.err;
    }
}

/// One fleet size's full failure lifecycle.
struct LifecycleRun {
    shards: usize,
    pre_qps: f64,
    fault_goodput_qps: f64,
    post_qps: f64,
    time_to_quarantine: Option<Duration>,
    time_to_recover: Option<Duration>,
    detached_submitted: u64,
    detached_resolved: u64,
    client_errors: u64,
    quarantines: u64,
    recoveries: u64,
    evacuated_requests: u64,
    failover_retries: u64,
    retries_denied: u64,
    accounting_exact: bool,
}

impl LifecycleRun {
    fn lost_tickets(&self) -> u64 {
        self.detached_submitted - self.detached_resolved
    }

    fn goodput_retained(&self) -> f64 {
        self.fault_goodput_qps / self.pre_qps.max(1e-9)
    }

    fn post_vs_pre(&self) -> f64 {
        self.post_qps / self.pre_qps.max(1e-9)
    }
}

fn run_lifecycle(
    registry: &Arc<ModelRegistry>,
    config: &AutoExecutorConfig,
    features: &[Vec<f64>],
    shards: usize,
    requests: usize,
) -> LifecycleRun {
    let fleet = ShardedRuntime::new(
        Arc::clone(registry),
        "fleet",
        FleetConfig::new(shards, shard_runtime(config)).with_health(lifecycle_policy()),
    );
    fleet.warm().expect("model warm-up");
    let victim = fleet.shard_for_tenant(TenantId(0));
    let mut offset = 0usize;
    let mut total_ok = 0u64;
    let mut total_err = 0u64;

    // Warm-up (untimed): fill every shard's model cache, branch
    // predictors, and allocator pools so the pre-fault baseline isn't
    // depressed by cold-start costs the later phases don't pay.
    let warmup = drive(&fleet, features, requests / 2, offset);
    offset += requests / 2;
    total_ok += warmup.ok;
    total_err += warmup.err;

    // Pre-fault baseline.
    let pre = drive(&fleet, features, requests, offset);
    offset += requests;
    total_ok += pre.ok;
    total_err += pre.err;

    // Kill the victim. Detached tickets ride through the fault window:
    // every one must resolve (Ok or error), none may strand.
    let detached_submitted = (requests / 8).max(64);
    let mut tickets = Vec::with_capacity(detached_submitted);
    for i in 0..detached_submitted {
        let request = ScoreRequest::from_features(features[i % features.len()].clone())
            .with_tenant(TenantId(i as u64 % TENANTS));
        tickets.push(fleet.submit_detached(request).expect("admission"));
    }
    fleet.induce_shard_fault(victim, InducedFault::Crash);
    let fault_start = Instant::now();
    let (time_to_quarantine, detect) = drive_until(
        &fleet,
        features,
        &mut offset,
        Duration::from_secs(10),
        || fleet.stats().quarantines >= 1,
    );
    total_ok += detect.ok;
    total_err += detect.err;
    // Degraded steady state: the survivors carry the full load.
    let degraded = drive(&fleet, features, requests, offset);
    offset += requests;
    total_ok += degraded.ok;
    total_err += degraded.err;
    let fault_elapsed = fault_start.elapsed();
    let fault_goodput_qps =
        (detect.ok + degraded.ok) as f64 / fault_elapsed.as_secs_f64().max(1e-9);

    // Revive and wait for probation to re-admit the shard.
    fleet.clear_shard_fault(victim);
    let (time_to_recover, probe) = drive_until(
        &fleet,
        features,
        &mut offset,
        Duration::from_secs(10),
        || fleet.stats().recoveries >= 1,
    );
    total_ok += probe.ok;
    total_err += probe.err;

    // Post-recovery rate on the restored full ring.
    let post = drive(&fleet, features, requests, offset);
    total_ok += post.ok;
    total_err += post.err;

    let mut detached_resolved = 0u64;
    let mut detached_ok = 0u64;
    for ticket in tickets {
        if let Ok(result) = ticket.wait_timeout(Duration::from_secs(10)) {
            detached_resolved += 1;
            match result {
                Ok(_) => detached_ok += 1,
                Err(_) => total_err += 1,
            }
        }
    }
    total_ok += detached_ok;

    let stats = fleet.stats();
    let aggregate = stats.aggregate();
    // The accounting identities: every client Ok is one completion, and
    // shard-side errors are client errors plus rescued failover attempts.
    let accounting_exact =
        aggregate.completed == total_ok && aggregate.errors == total_err + stats.failover_retries;
    let run = LifecycleRun {
        shards,
        pre_qps: pre.peak_qps,
        fault_goodput_qps,
        post_qps: post.peak_qps,
        time_to_quarantine,
        time_to_recover,
        detached_submitted: detached_submitted as u64,
        detached_resolved,
        client_errors: total_err,
        quarantines: stats.quarantines,
        recoveries: stats.recoveries,
        evacuated_requests: stats.evacuated_requests,
        failover_retries: stats.failover_retries,
        retries_denied: stats.retries_denied,
        accounting_exact,
    };
    fleet.shutdown();
    run
}

fn format_ms(duration: Option<Duration>) -> String {
    match duration {
        Some(d) => format!("{:.1}", d.as_secs_f64() * 1e3),
        None => "null".to_string(),
    }
}

fn write_json(path: &str, runs: &[LifecycleRun]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"comment\": \"ae-serve fleet resilience benchmark: one full failure lifecycle per \
         fleet size, live on this host. A closed-loop client measures pre-fault qps, then one \
         shard is crashed: failover rescues in-flight failures while the health monitor \
         quarantines the shard (time_to_quarantine_ms), survivors carry the load \
         (fault_goodput_qps), the fault clears, and the probation trickle re-admits the shard \
         (time_to_recover_ms), after which post_qps is measured on the restored ring. Detached \
         tickets ride through the kill window; lost_tickets must be 0. accounting_exact checks \
         completed == client Oks and errors == client errors + failover retries. Regenerate \
         with: cargo run --release -p ae-bench --bin bench_resilience -- --json \
         BENCH_resilience.json\",\n",
    );
    out.push_str(&format!(
        "  \"host\": \"{}-core container (rustc 1.95, release profile)\",\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str("  \"fleet_sizes\": [\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"shards\": {},\n", run.shards));
        out.push_str(&format!("      \"pre_fault_qps\": {:.1},\n", run.pre_qps));
        out.push_str(&format!(
            "      \"fault_goodput_qps\": {:.1},\n",
            run.fault_goodput_qps
        ));
        out.push_str(&format!(
            "      \"goodput_retained\": {:.3},\n",
            run.goodput_retained()
        ));
        out.push_str(&format!(
            "      \"post_recovery_qps\": {:.1},\n",
            run.post_qps
        ));
        out.push_str(&format!(
            "      \"post_vs_pre\": {:.3},\n",
            run.post_vs_pre()
        ));
        out.push_str(&format!(
            "      \"time_to_quarantine_ms\": {},\n",
            format_ms(run.time_to_quarantine)
        ));
        out.push_str(&format!(
            "      \"time_to_recover_ms\": {},\n",
            format_ms(run.time_to_recover)
        ));
        out.push_str(&format!(
            "      \"detached_tickets\": {},\n      \"lost_tickets\": {},\n",
            run.detached_submitted,
            run.lost_tickets()
        ));
        out.push_str(&format!(
            "      \"client_errors\": {},\n      \"quarantines\": {},\n      \
             \"recoveries\": {},\n      \"evacuated_requests\": {},\n      \
             \"failover_retries\": {},\n      \"retries_denied\": {},\n",
            run.client_errors,
            run.quarantines,
            run.recoveries,
            run.evacuated_requests,
            run.failover_retries,
            run.retries_denied,
        ));
        out.push_str(&format!(
            "      \"accounting_exact\": {}\n",
            run.accounting_exact
        ));
        out.push_str("    }");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path).expect("create json output");
    file.write_all(out.as_bytes()).expect("write json output");
    println!("wrote {path}");
}

fn main() {
    let args = parse_args();

    let registry_families = FamilyRegistry::builtin();
    let family = registry_families.get("tpcds").expect("builtin tpcds");
    let suite: Vec<QueryInstance> =
        WorkloadGenerator::for_family(family, ScaleFactor::SF10).suite();
    println!(
        "==> training the parameter model ({}-query SF10 tpcds suite)",
        suite.len()
    );
    let mut config = AutoExecutorConfig::default();
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&suite, &config).expect("training");
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("fleet", model.to_portable("fleet").unwrap())
        .unwrap();

    let rewriter = Optimizer::with_default_rules();
    let features: Vec<Vec<f64>> = suite
        .iter()
        .map(|q| {
            let optimized = rewriter.optimize(q.plan.clone()).unwrap().plan;
            autoexecutor::featurize_plan(&optimized)
        })
        .collect();

    let mut runs = Vec::new();
    for &shards in &args.shards {
        let run = run_lifecycle(&registry, &config, &features, shards, args.requests);
        println!(
            "resilience: {:>2} shards   pre {:>8.0} qps   fault goodput {:>8.0} qps ({:>5.1}% retained)   post {:>8.0} qps   quarantine {:>7} ms   recover {:>7} ms   lost {}",
            run.shards,
            run.pre_qps,
            run.fault_goodput_qps,
            run.goodput_retained() * 100.0,
            run.post_qps,
            format_ms(run.time_to_quarantine),
            format_ms(run.time_to_recover),
            run.lost_tickets(),
        );
        runs.push(run);
    }

    if let Some(path) = &args.json {
        write_json(path, &runs);
    }

    if args.smoke {
        let mut failures = Vec::new();
        for run in &runs {
            if run.lost_tickets() != 0 {
                failures.push(format!(
                    "{}-shard run lost {} tickets",
                    run.shards,
                    run.lost_tickets()
                ));
            }
            if !run.accounting_exact {
                failures.push(format!("{}-shard accounting is not exact", run.shards));
            }
            if run.quarantines == 0 || run.time_to_quarantine.is_none() {
                failures.push(format!(
                    "{}-shard kill was never detected/quarantined",
                    run.shards
                ));
            }
            if run.recoveries == 0 || run.time_to_recover.is_none() {
                failures.push(format!(
                    "{}-shard probation never re-admitted the revived shard",
                    run.shards
                ));
            }
        }
        match runs.iter().find(|r| r.shards == 4) {
            Some(four) => {
                if four.goodput_retained() < 0.6 {
                    failures.push(format!(
                        "killing 1 of 4 shards must retain >= 60% goodput (got {:.1}%)",
                        four.goodput_retained() * 100.0
                    ));
                }
            }
            None => failures.push("smoke needs a 4-shard run (--shards must include 4)".into()),
        }
        if !failures.is_empty() {
            eprintln!("resilience smoke FAILED: {}", failures.join("; "));
            std::process::exit(1);
        }
        println!(
            "resilience smoke OK (zero lost tickets, >= 60% goodput through a 1-of-4 kill, \
             probation re-admitted every revived shard)"
        );
    }
}
