//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p ae-bench --release --bin experiments -- all
//! cargo run -p ae-bench --release --bin experiments -- fig9 fig13
//! cargo run -p ae-bench --release --bin experiments -- --list
//! ```

use ae_bench::context::ExperimentContext;
use ae_bench::experiments::{run, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }

    let requested: Vec<String> = if args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };

    let mut ctx = ExperimentContext::new();
    let start = std::time::Instant::now();
    for id in &requested {
        if !run(id, &mut ctx) {
            eprintln!("unknown experiment '{id}' — use --list to see the available ids");
            std::process::exit(2);
        }
    }
    eprintln!(
        "\ncompleted {} experiment(s) in {:.1}s",
        requested.len(),
        start.elapsed().as_secs_f64()
    );
}

fn print_usage() {
    println!("usage: experiments [--list] <experiment-id>... | all");
    println!("experiment ids: {}", ALL_EXPERIMENTS.join(", "));
}
