//! Cross-family generalization benchmark: trains the parameter model on each
//! workload family in turn and scores every family's suite, emitting the
//! full train-family × test-family accuracy matrix.
//!
//! Families covered (the builtin registry): `tpcds` (deep,
//! aggregation-heavy), `tpch` (shallow, scan/join-heavy), `skew`
//! (heavy-tailed sizes, stragglers, extreme elbows). Matrix entries are the
//! mean of the paper's `E(n)` metric over the evaluation executor counts;
//! the diagonal is the in-family reference, the off-diagonal cells measure
//! transfer to a family the model never saw.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ae-bench --bin bench_generalization                 # full run
//! cargo run --release -p ae-bench --bin bench_generalization -- --smoke     # CI gate
//! cargo run --release -p ae-bench --bin bench_generalization -- --json BENCH_generalization.json
//! ```
//!
//! `--smoke` shrinks every knob (query subsets, one ground-truth repeat, a
//! small forest, three evaluation counts) and exits non-zero unless the
//! matrix covers every family pair with finite errors — in particular the
//! train-on-TPC-DS-like / score-TPC-H-like cell the CI gate is about.

use std::io::Write as _;
use std::time::Instant;

use ae_bench::experiments::generalization::print_matrix;
use ae_workload::{BuiltinFamily, ScaleFactor, WorkloadGenerator};
use autoexecutor::evaluation::{
    generalization_matrix, ActualRuns, FamilyEvalSet, GeneralizationMatrix,
};
use autoexecutor::{AutoExecutorConfig, TrainingData};

struct Args {
    smoke: bool,
    sf: u32,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        sf: 10,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--sf" => {
                args.sf = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sf needs a number");
            }
            "--json" => args.json = it.next(),
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

/// Ground-truth repeats (full mode matches the experiment harness).
const FULL_REPEATS: usize = 3;

fn build_eval_sets(
    config: &AutoExecutorConfig,
    sf: ScaleFactor,
    eval_counts: &[usize],
    smoke: bool,
) -> Vec<FamilyEvalSet> {
    BuiltinFamily::ALL
        .into_iter()
        .map(|family| {
            let mut suite = WorkloadGenerator::builtin(family, sf).suite();
            if smoke {
                // An evenly-strided subset keeps each family's diversity
                // (the skew suite alternates its bimodal draws, so a prefix
                // would be lopsided).
                suite = suite.into_iter().step_by(2).take(12).collect();
            }
            eprintln!(
                "==> {family}: collecting training data + ground truth ({} queries)",
                suite.len()
            );
            let data = TrainingData::collect(&suite, config).expect("training-data collection");
            let repeats = if smoke { 1 } else { FULL_REPEATS };
            let actuals =
                ActualRuns::collect(&suite, eval_counts, repeats, &config.cluster, 0xAE_2023)
                    .expect("ground-truth collection");
            FamilyEvalSet {
                family: family.key().to_string(),
                suite,
                data,
                actuals,
            }
        })
        .collect()
}

fn write_json(path: &str, sf: u32, matrix: &GeneralizationMatrix) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"comment\": \"Cross-family generalization: the parameter model is trained on each \
         workload family's full suite and scored on every family's suite. Entries are the mean \
         E(n) (Equation 6) over the evaluation executor counts; diagonal = in-family reference, \
         off-diagonal = transfer to an unseen family. Regenerate with: cargo run --release -p \
         ae-bench --bin bench_generalization -- --json BENCH_generalization.json\",\n",
    );
    out.push_str(&format!(
        "  \"host\": \"{}-core container (release profile)\",\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(&format!("  \"scale_factor\": {sf},\n"));
    out.push_str(&format!(
        "  \"families\": [{}],\n",
        matrix
            .families
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"eval_counts\": {:?},\n", matrix.eval_counts));
    out.push_str(&format!(
        "  \"generalization_gap\": {:.4},\n",
        matrix.generalization_gap()
    ));
    out.push_str("  \"matrix\": [\n");
    for (i, cell) in matrix.cells.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"train_family\": \"{}\",\n      \"test_family\": \"{}\",\n",
            cell.train_family, cell.test_family
        ));
        out.push_str(&format!("      \"mean_error\": {:.4},\n", cell.mean_error));
        let per_count: Vec<String> = cell
            .error_by_count
            .iter()
            .map(|(n, e)| format!("\"{n}\": {e:.4}"))
            .collect();
        out.push_str(&format!(
            "      \"error_by_count\": {{{}}}\n",
            per_count.join(", ")
        ));
        out.push_str("    }");
        out.push_str(if i + 1 < matrix.cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path).expect("create json output");
    file.write_all(out.as_bytes()).expect("write json output");
    println!("wrote {path}");
}

fn main() {
    let args = parse_args();
    let sf = ScaleFactor(args.sf);
    let start = Instant::now();

    let mut config = AutoExecutorConfig::default();
    let eval_counts: Vec<usize> = if args.smoke {
        config.forest.n_estimators = 16;
        config.training_run.noise_cv = 0.0;
        vec![1, 8, 48]
    } else {
        config.training_counts.to_vec()
    };

    let sets = build_eval_sets(&config, sf, &eval_counts, args.smoke);
    eprintln!(
        "==> training one model per family and scoring the {0}x{0} matrix",
        sets.len()
    );
    let matrix =
        generalization_matrix(&sets, &config, &eval_counts).expect("generalization matrix");
    print_matrix(&matrix);
    println!(
        "completed in {:.1}s ({} queries per family at {sf})",
        start.elapsed().as_secs_f64(),
        sets.iter()
            .map(|s| s.suite.len().to_string())
            .collect::<Vec<_>>()
            .join("/"),
    );

    if let Some(path) = &args.json {
        write_json(path, args.sf, &matrix);
    }

    if args.smoke {
        let mut failures = Vec::new();
        let expected: Vec<&str> = BuiltinFamily::ALL.iter().map(|f| f.key()).collect();
        if matrix.families != expected {
            failures.push(format!("families {:?} != {expected:?}", matrix.families));
        }
        if matrix.cells.len() != expected.len() * expected.len() {
            failures.push(format!(
                "{} cells, expected {}",
                matrix.cells.len(),
                expected.len() * expected.len()
            ));
        }
        if !matrix.is_finite() {
            failures.push("matrix contains non-finite errors".to_string());
        }
        if matrix.cell("tpcds", "tpch").is_none() {
            failures.push("missing the train=tpcds/test=tpch cell".to_string());
        }
        if !failures.is_empty() {
            eprintln!("generalization smoke FAILED: {}", failures.join("; "));
            std::process::exit(1);
        }
        println!("generalization smoke OK (full finite matrix over {expected:?})");
    }
}
