//! Fault-tolerance benchmark: deterministic fault injection swept over
//! preemption rates, plus the degraded-mode serving drill.
//!
//! Four phases:
//!
//! * **zero-fault pin** — one reference query simulated with a plain
//!   `RunConfig` and with an explicit `FaultPlan::none()`; the results
//!   must be bit-identical (the fault layer is provably inert when
//!   inactive).
//! * **preemption sweep** — each scoring query is sized by the trained
//!   model twice (risk-unaware, and with the `PreemptionRisk` adjustment
//!   priced at the swept rate), then simulated under spot preemptions at
//!   rates {0, 0.05, 0.1, 0.2}/executor-minute. Reported per rate:
//!   completion rate (queries that finish via retry), retry overhead
//!   (faulty vs clean elapsed at the same seed), fault accounting (tasks
//!   lost, work lost, recovery time, replacements), and **E(n) accuracy**
//!   — how much closer the risk-adjusted expected runtime tracks the
//!   observed elapsed-under-faults than the fault-free prediction.
//! * **risk-aware selection** — where the adjusted curve picks a smaller
//!   `n`, both choices are simulated under faults and their mean elapsed
//!   compared (does pricing the exposure pay?).
//! * **degraded-mode drill** — a serving runtime with a circuit breaker
//!   and a missing model: every request must still be answered (by the
//!   heuristic fallback, marked degraded), the breaker must trip; after
//!   the model is registered and the cooldown elapses, the half-open
//!   probe must restore non-degraded service.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ae-bench --bin bench_faults                # full run
//! cargo run --release -p ae-bench --bin bench_faults -- --smoke    # CI gate
//! cargo run --release -p ae-bench --bin bench_faults -- --json BENCH_faults.json
//! ```
//!
//! `--smoke` shrinks the grid and exits non-zero unless: the zero-fault
//! pin holds bit-for-bit, at a moderate preemption rate
//! (0.1/executor-min) at least 99% of runs complete via retry, and the
//! breaker demonstrably trips to the fallback and recovers.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

use ae_engine::allocation::AllocationPolicy;
use ae_engine::scheduler::{RunConfig, SimScratch, Simulator};
use ae_engine::FaultPlan;
use ae_ppm::PreemptionRisk;
use ae_serve::{BreakerConfig, RuntimeConfig, ScoreRequest, ScoringRuntime};
use ae_workload::{FaultSeeds, QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::features::featurize_plan;
use autoexecutor::prelude::*;
use autoexecutor::scoring::{score_features, score_features_with_risk};
use autoexecutor::ModelRegistry;

/// Nominal per-revocation recovery cost (seconds) used to price the risk
/// adjustment before any faulty run is observed: replacement
/// re-acquisition through the allocation lag plus expected re-execution
/// of lost work. A round a-priori figure in the ballpark of the grace
/// window plus executor startup plus half a mean task — the sweep then
/// measures how well the resulting E(n) tracks reality.
const RECOVERY_ESTIMATE_SECS: f64 = 5.0;

/// Grace window between revocation notice and executor death (the spot
/// two-minute warning, scaled to simulation seconds).
const GRACE_SECS: f64 = 2.0;

struct Args {
    smoke: bool,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--json" => args.json = it.next(),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One (rate, query) cell of the sweep.
struct Cell {
    query: String,
    /// Risk-unaware model selection.
    n_plain: usize,
    /// Selection on the risk-adjusted curve at this rate.
    n_risk: usize,
    /// Fault-free predicted elapsed at `n_plain`.
    pred_plain: f64,
    /// Risk-adjusted expected elapsed at `n_plain`.
    pred_risk: f64,
    /// Mean elapsed of *completed* faulty runs at `n_plain`.
    mean_faulty: f64,
    /// Mean elapsed of completed faulty runs at `n_risk`.
    mean_faulty_risk: f64,
    /// Mean clean (fault-free) elapsed at `n_plain`, same noise seeds.
    mean_clean: f64,
    completed: usize,
    runs: usize,
    tasks_lost: u64,
    replacements: u64,
    work_lost_secs: f64,
    recovery_secs: f64,
}

/// Per-rate aggregates over the suite.
struct RateSummary {
    rate: f64,
    completion_rate: f64,
    /// Mean of faulty/clean elapsed ratios (completed runs only).
    retry_overhead: f64,
    /// Mean absolute relative error of the fault-free prediction against
    /// observed elapsed under faults.
    e_err_plain: f64,
    /// Same for the risk-adjusted prediction.
    e_err_risk: f64,
    /// Mean elapsed at the risk-aware selection over mean elapsed at the
    /// plain selection (< 1 means pricing the exposure paid off).
    risk_selection_ratio: f64,
    mean_tasks_lost: f64,
    mean_replacements: f64,
    mean_work_lost_secs: f64,
    mean_recovery_secs: f64,
    cells: Vec<Cell>,
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Trains the parameter model on a fault-free workload slice.
fn trained_model(
    config: &AutoExecutorConfig,
    generator: &WorkloadGenerator,
) -> autoexecutor::training::ParameterModel {
    let training: Vec<QueryInstance> = ["q1", "q5", "q12", "q23b", "q69", "q77", "q88", "q96"]
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    let (_, model) = train_from_workload(&training, config).expect("training");
    model
}

/// The zero-fault pin: a plain run and an explicit `FaultPlan::none()`
/// run must agree bit-for-bit. Returns true when the pin holds.
fn zero_fault_pin(config: &AutoExecutorConfig, query: &QueryInstance) -> bool {
    let simulator =
        Simulator::new(config.cluster, AllocationPolicy::static_allocation(8)).expect("simulator");
    let plain_cfg = RunConfig {
        seed: 7,
        ..RunConfig::default()
    };
    let gated_cfg = plain_cfg.with_faults(FaultPlan::none());
    let plain = simulator.run(&query.name, &query.dag, &plain_cfg);
    let gated = simulator.run(&query.name, &query.dag, &gated_cfg);
    let identical = plain.elapsed_secs.to_bits() == gated.elapsed_secs.to_bits()
        && plain.auc_executor_secs.to_bits() == gated.auc_executor_secs.to_bits()
        && plain.total_task_secs.to_bits() == gated.total_task_secs.to_bits()
        && plain.max_executors == gated.max_executors
        && gated.is_completed()
        && gated.faults.is_clean();
    println!(
        "zero-fault pin ({}): elapsed {:.6} s, auc {:.3} exec-s, bit-identical: {}",
        query.name, plain.elapsed_secs, plain.auc_executor_secs, identical
    );
    identical
}

/// Simulates `reps` faulty runs (plus same-seed clean runs) of one query
/// at one rate and fills in a [`Cell`].
#[allow(clippy::too_many_arguments)]
fn run_cell(
    config: &AutoExecutorConfig,
    model: &autoexecutor::training::ParameterModel,
    query: &QueryInstance,
    query_index: usize,
    rate: f64,
    reps: usize,
    seeds: &FaultSeeds,
    scratch: &mut SimScratch,
) -> Cell {
    let counts = config.candidate_counts();
    let features = featurize_plan(&query.plan);
    let plain = score_features(model, &features, config.objective, &counts)
        .expect("scoring")
        .request;
    let risk = PreemptionRisk::new(rate, RECOVERY_ESTIMATE_SECS);
    let risky = score_features_with_risk(model, &features, config.objective, &counts, Some(&risk))
        .expect("risk scoring")
        .request;
    let n_plain = plain.executors;
    let n_risk = risky.executors;
    let pred_plain = plain
        .predicted_curve
        .iter()
        .find(|&&(n, _)| n == n_plain)
        .map_or(f64::NAN, |&(_, t)| t);
    let pred_risk = risk.adjust(n_plain, pred_plain);

    let mut cell = Cell {
        query: query.name.clone(),
        n_plain,
        n_risk,
        pred_plain,
        pred_risk,
        mean_faulty: f64::NAN,
        mean_faulty_risk: f64::NAN,
        mean_clean: f64::NAN,
        completed: 0,
        runs: 0,
        tasks_lost: 0,
        replacements: 0,
        work_lost_secs: 0.0,
        recovery_secs: 0.0,
    };
    let mut faulty = Vec::new();
    let mut faulty_risk = Vec::new();
    let mut clean = Vec::new();
    for rep in 0..reps {
        let fault_seed = seeds.seed_for(query_index, rep);
        let noise_seed = 0xC0FFEE_u64
            .wrapping_add(query_index as u64)
            .wrapping_mul(31)
            .wrapping_add(rep as u64);
        let plan = FaultPlan::preemptions(rate, GRACE_SECS).with_seed(fault_seed);
        let faulty_cfg = RunConfig {
            seed: noise_seed,
            ..RunConfig::default()
        }
        .with_faults(plan);
        let clean_cfg = RunConfig {
            seed: noise_seed,
            ..RunConfig::default()
        };

        let sim_plain =
            Simulator::new(config.cluster, AllocationPolicy::static_allocation(n_plain))
                .expect("simulator");
        let fault_run = sim_plain.run_with_scratch(&query.name, &query.dag, &faulty_cfg, scratch);
        cell.runs += 1;
        cell.tasks_lost += fault_run.faults.tasks_lost as u64;
        cell.replacements += fault_run.faults.replacements_requested as u64;
        cell.work_lost_secs += fault_run.faults.work_lost_secs;
        cell.recovery_secs += fault_run.faults.recovery_secs;
        if fault_run.is_completed() {
            cell.completed += 1;
            faulty.push(fault_run.elapsed_secs);
        }
        let clean_run = sim_plain.run_with_scratch(&query.name, &query.dag, &clean_cfg, scratch);
        clean.push(clean_run.elapsed_secs);

        if n_risk == n_plain {
            if fault_run.is_completed() {
                faulty_risk.push(fault_run.elapsed_secs);
            }
        } else {
            let sim_risk =
                Simulator::new(config.cluster, AllocationPolicy::static_allocation(n_risk))
                    .expect("simulator");
            let risk_run = sim_risk.run_with_scratch(&query.name, &query.dag, &faulty_cfg, scratch);
            if risk_run.is_completed() {
                faulty_risk.push(risk_run.elapsed_secs);
            }
        }
    }
    cell.mean_faulty = mean(&faulty);
    cell.mean_faulty_risk = mean(&faulty_risk);
    cell.mean_clean = mean(&clean);
    cell
}

fn sweep_rate(
    config: &AutoExecutorConfig,
    model: &autoexecutor::training::ParameterModel,
    queries: &[QueryInstance],
    rate: f64,
    reps: usize,
) -> RateSummary {
    let seeds = FaultSeeds::new(0xFA17 ^ (rate * 1e4) as u64);
    let mut scratch = SimScratch::new();
    let cells: Vec<Cell> = queries
        .iter()
        .enumerate()
        .map(|(qi, q)| run_cell(config, model, q, qi, rate, reps, &seeds, &mut scratch))
        .collect();

    let total_runs: usize = cells.iter().map(|c| c.runs).sum();
    let total_completed: usize = cells.iter().map(|c| c.completed).sum();
    let overheads: Vec<f64> = cells
        .iter()
        .filter(|c| c.mean_faulty.is_finite() && c.mean_clean.is_finite() && c.mean_clean > 0.0)
        .map(|c| c.mean_faulty / c.mean_clean)
        .collect();
    let e_err = |pred: fn(&Cell) -> f64| {
        let errs: Vec<f64> = cells
            .iter()
            .filter(|c| c.mean_faulty.is_finite() && c.mean_faulty > 0.0)
            .map(|c| ((pred(c) - c.mean_faulty) / c.mean_faulty).abs())
            .collect();
        mean(&errs)
    };
    let selection_ratios: Vec<f64> = cells
        .iter()
        .filter(|c| c.mean_faulty.is_finite() && c.mean_faulty_risk.is_finite())
        .map(|c| c.mean_faulty_risk / c.mean_faulty)
        .collect();

    RateSummary {
        rate,
        completion_rate: if total_runs == 0 {
            f64::NAN
        } else {
            total_completed as f64 / total_runs as f64
        },
        retry_overhead: mean(&overheads),
        e_err_plain: e_err(|c| c.pred_plain),
        e_err_risk: e_err(|c| c.pred_risk),
        risk_selection_ratio: mean(&selection_ratios),
        mean_tasks_lost: cells.iter().map(|c| c.tasks_lost as f64).sum::<f64>()
            / total_runs.max(1) as f64,
        mean_replacements: cells.iter().map(|c| c.replacements as f64).sum::<f64>()
            / total_runs.max(1) as f64,
        mean_work_lost_secs: cells.iter().map(|c| c.work_lost_secs).sum::<f64>()
            / total_runs.max(1) as f64,
        mean_recovery_secs: cells.iter().map(|c| c.recovery_secs).sum::<f64>()
            / total_runs.max(1) as f64,
        cells,
    }
}

struct BreakerDrill {
    requests_during_outage: usize,
    degraded_during_outage: u64,
    trips: u64,
    recovered_non_degraded: bool,
}

/// The degraded-mode drill: breaker + missing model, then recovery.
fn breaker_drill(config: &AutoExecutorConfig, queries: &[QueryInstance]) -> BreakerDrill {
    let registry = Arc::new(ModelRegistry::in_memory());
    let runtime = ScoringRuntime::new(
        Arc::clone(&registry),
        "ppm",
        RuntimeConfig::deterministic(config).with_breaker(
            BreakerConfig::default()
                .with_failure_threshold(2)
                .with_cooldown(Duration::from_millis(10)),
        ),
    );
    let mut degraded_ok = 0usize;
    for query in queries {
        let outcome = runtime
            .submit(ScoreRequest::from_plan(&query.plan))
            .expect("degraded mode must answer");
        if outcome.degraded {
            degraded_ok += 1;
        }
    }
    let outage = runtime.stats();

    // Heal: register the model and wait out the cooldown.
    let model = trained_model(config, &WorkloadGenerator::new(ScaleFactor::SF10));
    registry
        .register("ppm", model.to_portable("ppm").expect("portable"))
        .expect("register");
    std::thread::sleep(Duration::from_millis(25));
    let recovered = queries
        .iter()
        .map(|q| {
            runtime
                .submit(ScoreRequest::from_plan(&q.plan))
                .expect("recovered scoring")
        })
        .all(|outcome| !outcome.degraded);

    BreakerDrill {
        requests_during_outage: queries.len(),
        degraded_during_outage: outage.degraded.min(degraded_ok as u64),
        trips: outage.breaker_trips,
        recovered_non_degraded: recovered,
    }
}

fn write_json(
    path: &str,
    pin_ok: bool,
    reps: usize,
    summaries: &[RateSummary],
    drill: &BreakerDrill,
) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"comment\": \"Fault-tolerance benchmark: spot preemptions injected at swept \
         rates (per executor-minute) into the deterministic scheduler; lost tasks re-enter \
         the ready queue (retry), replacements re-acquire through the allocation lag. \
         'completion_rate' counts runs finishing via retry; 'retry_overhead' is faulty/clean \
         elapsed at matched noise seeds; 'e_err_*' is the mean |prediction-observed|/observed \
         of the fault-free vs risk-adjusted expected runtime; 'risk_selection_ratio' < 1 \
         means selecting on the risk-adjusted curve ran faster under faults. The breaker \
         drill serves against a missing model: requests must complete degraded via the \
         heuristic fallback, then recover after registration. Regenerate with: cargo run \
         --release -p ae-bench --bin bench_faults -- --json BENCH_faults.json\",\n",
    );
    out.push_str(&format!(
        "  \"host\": \"{}-core container (rustc 1.95, release profile)\",\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(&format!("  \"zero_fault_pin_bit_identical\": {pin_ok},\n"));
    out.push_str(&format!(
        "  \"grace_secs\": {GRACE_SECS}, \"recovery_estimate_secs\": {RECOVERY_ESTIMATE_SECS}, \
         \"repeats_per_query\": {reps},\n"
    ));
    out.push_str("  \"rates\": [\n");
    for (i, s) in summaries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"rate_per_executor_min\": {}, \"completion_rate\": {:.4}, \
             \"retry_overhead\": {:.4}, \"e_err_plain\": {:.4}, \"e_err_risk\": {:.4}, \
             \"risk_selection_ratio\": {:.4},\n",
            s.rate,
            s.completion_rate,
            s.retry_overhead,
            s.e_err_plain,
            s.e_err_risk,
            s.risk_selection_ratio
        ));
        out.push_str(&format!(
            "      \"mean_tasks_lost\": {:.3}, \"mean_replacements\": {:.3}, \
             \"mean_work_lost_secs\": {:.3}, \"mean_recovery_secs\": {:.3},\n",
            s.mean_tasks_lost, s.mean_replacements, s.mean_work_lost_secs, s.mean_recovery_secs
        ));
        out.push_str("      \"queries\": [\n");
        for (qi, c) in s.cells.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"query\": \"{}\", \"n_plain\": {}, \"n_risk\": {}, \
                 \"pred_plain_s\": {:.3}, \"pred_risk_s\": {:.3}, \"mean_faulty_s\": {:.3}, \
                 \"mean_clean_s\": {:.3}, \"completed\": {}, \"runs\": {}, \
                 \"tasks_lost\": {}, \"work_lost_s\": {:.3}, \"recovery_s\": {:.3}}}{}\n",
                c.query,
                c.n_plain,
                c.n_risk,
                c.pred_plain,
                c.pred_risk,
                c.mean_faulty,
                c.mean_clean,
                c.completed,
                c.runs,
                c.tasks_lost,
                c.work_lost_secs,
                c.recovery_secs,
                if qi + 1 < s.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 < summaries.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"breaker_drill\": {{\"requests_during_outage\": {}, \
         \"degraded_during_outage\": {}, \"breaker_trips\": {}, \
         \"recovered_non_degraded\": {}}}\n",
        drill.requests_during_outage,
        drill.degraded_during_outage,
        drill.trips,
        drill.recovered_non_degraded,
    ));
    out.push_str("}\n");
    let mut file = std::fs::File::create(path).expect("create json output");
    file.write_all(out.as_bytes()).expect("write json output");
    println!("wrote {path}");
}

fn main() {
    let args = parse_args();
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = if args.smoke { 8 } else { 16 };
    config.training_run.noise_cv = 0.0;

    let scoring_names: &[&str] = if args.smoke {
        &["q3", "q19", "q55"]
    } else {
        &["q3", "q7", "q19", "q27", "q42", "q55", "q68", "q94"]
    };
    let queries: Vec<QueryInstance> = scoring_names
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    let rates: &[f64] = if args.smoke {
        &[0.0, 0.1]
    } else {
        &[0.0, 0.05, 0.1, 0.2]
    };
    let reps = if args.smoke { 2 } else { 3 };

    println!("== bench_faults: training the parameter model (fault-free) ==");
    let model = trained_model(&config, &generator);

    println!("\n== phase 1: zero-fault pin ==");
    let pin_ok = zero_fault_pin(&config, &queries[0]);

    println!(
        "\n== phase 2+3: preemption sweep ({} rates x {} queries x {} reps) ==",
        rates.len(),
        queries.len(),
        reps
    );
    println!(
        "{:>6} {:>10} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "rate", "complete", "overhead", "e_err", "e_err_rsk", "sel_ratio", "lost/run", "recov_s"
    );
    let summaries: Vec<RateSummary> = rates
        .iter()
        .map(|&rate| {
            let s = sweep_rate(&config, &model, &queries, rate, reps);
            println!(
                "{:>6.2} {:>9.1}% {:>9.3} {:>10.3} {:>10.3} {:>9.3} {:>9.2} {:>9.2}",
                s.rate,
                s.completion_rate * 100.0,
                s.retry_overhead,
                s.e_err_plain,
                s.e_err_risk,
                s.risk_selection_ratio,
                s.mean_tasks_lost,
                s.mean_recovery_secs
            );
            s
        })
        .collect();

    println!("\n== phase 4: degraded-mode drill (breaker + missing model) ==");
    let drill = breaker_drill(&config, &queries);
    println!(
        "outage: {}/{} answered degraded, {} breaker trip(s); recovered non-degraded: {}",
        drill.degraded_during_outage,
        drill.requests_during_outage,
        drill.trips,
        drill.recovered_non_degraded
    );

    let path = args.json.as_deref().unwrap_or("BENCH_faults.json");
    write_json(path, pin_ok, reps, &summaries, &drill);

    if args.smoke {
        let mut failures = Vec::new();
        if !pin_ok {
            failures.push("zero-fault runs are not bit-identical".to_string());
        }
        let zero = summaries.iter().find(|s| s.rate == 0.0);
        if let Some(zero) = zero {
            if zero.completion_rate < 1.0 {
                failures.push("fault-free runs must always complete".to_string());
            }
        }
        if let Some(moderate) = summaries.iter().find(|s| s.rate > 0.0 && s.rate <= 0.1) {
            if moderate.completion_rate < 0.99 {
                failures.push(format!(
                    "completion via retry at rate {} is {:.1}%, need >= 99%",
                    moderate.rate,
                    moderate.completion_rate * 100.0
                ));
            }
        } else {
            failures.push("no moderate-rate row in the sweep".to_string());
        }
        if drill.trips == 0 {
            failures.push("the breaker never tripped during the outage".to_string());
        }
        if drill.degraded_during_outage != drill.requests_during_outage as u64 {
            failures.push("not every outage request was served degraded".to_string());
        }
        if !drill.recovered_non_degraded {
            failures.push("the breaker did not recover the model path".to_string());
        }
        if failures.is_empty() {
            println!("\nSMOKE OK");
        } else {
            for f in &failures {
                eprintln!("SMOKE FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}
