//! Serving-path benchmark: sustained queries/second, p50/p99 latency, and
//! batch-size histogram of the `ae-serve` scoring runtime against naive
//! one-at-a-time serving loops.
//!
//! Modes measured (each for a fixed duration at `--threads` client threads):
//!
//! * `naive_one_at_a_time` — the pre-PR serving path: a global mutex
//!   serializes requests, and every request fetches the model from the
//!   registry with owned (deep-clone) semantics and re-decodes it before
//!   scoring — exactly what `ModelRegistry::load` did for every call before
//!   the `Arc`-handle refactor.
//! * `sequential_cached_mutex` — a fairer sequential baseline: the decoded
//!   model is cached, but a global mutex still scores one plan at a time.
//! * `ae_serve_closed_loop` — the batching runtime under closed-loop load
//!   (every client issues its next request on completion).
//! * `ae_serve_open_loop` — the batching runtime replaying a Poisson
//!   open-loop schedule (`ae_workload::OpenLoop`) at ~60 % of the measured
//!   closed-loop throughput.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ae-bench --bin bench_serving            # full run
//! cargo run --release -p ae-bench --bin bench_serving -- --smoke # CI gate
//! cargo run --release -p ae-bench --bin bench_serving -- --json BENCH_serving.json
//! cargo run --release -p ae-bench --bin bench_serving -- --family mixed
//! cargo run --release -p ae-bench --bin bench_serving -- --obs  # with observability
//! ```
//!
//! `--smoke` shortens every phase and exits non-zero unless the runtime
//! sustained qps > 0 with zero dropped requests and zero errors.
//! `--obs` attaches an `ae-obs` metrics registry and event sink to the
//! runtime (the overhead A/B lives in `bench_obs`).
//! `--family` selects which workload family's suite is trained on and
//! replayed (`tpcds` by default, any registered family key, or `mixed` for
//! a request stream spanning every builtin family).

use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ae_engine::plan::QueryPlan;
use ae_obs::{Ladder, LatencyStats, MetricsRegistry, ShardedHistogram};
use ae_serve::{ObsConfig, RuntimeConfig, RuntimeStats, ScoringRuntime};
use ae_workload::{
    mixed_suite, ClosedLoop, FamilyRegistry, OpenLoop, QueryInstance, ScaleFactor,
    WorkloadGenerator,
};
use autoexecutor::prelude::*;
use autoexecutor::scoring;
use autoexecutor::ModelRegistry;

struct Args {
    smoke: bool,
    threads: usize,
    seconds: f64,
    family: String,
    json: Option<String>,
    obs: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: 8,
        seconds: 4.0,
        family: "tpcds".to_string(),
        json: None,
        obs: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--obs" => args.obs = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--seconds" => {
                args.seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds needs a number");
            }
            "--family" => {
                args.family = it.next().expect("--family needs a family key or 'mixed'");
            }
            "--json" => args.json = it.next(),
            other => panic!("unknown argument: {other}"),
        }
    }
    if args.smoke {
        args.seconds = args.seconds.min(0.6);
    }
    args
}

/// Resolves `--family` into the suite the benchmark trains on and replays:
/// one registered family's suite, or `mixed` — the concatenation of every
/// builtin family, so the request stream spans families.
fn resolve_suite(family: &str) -> Vec<QueryInstance> {
    let registry = FamilyRegistry::builtin();
    if family == "mixed" {
        return mixed_suite(registry.families(), ScaleFactor::SF10);
    }
    match registry.get(family) {
        Some(f) => WorkloadGenerator::for_family(f, ScaleFactor::SF10).suite(),
        None => {
            eprintln!(
                "unknown family '{family}' — expected one of {:?} or 'mixed'",
                registry.names()
            );
            std::process::exit(2);
        }
    }
}

/// One measured serving mode.
struct ModeResult {
    name: &'static str,
    detail: &'static str,
    requests: u64,
    elapsed: Duration,
    latency: LatencyStats,
    stats: Option<RuntimeStats>,
}

impl ModeResult {
    fn qps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn print_mode(mode: &ModeResult) {
    println!(
        "mode: {:<26} {:>9.0} qps   p50 {:>9.1} µs   p99 {:>9.1} µs   ({} requests in {:.2}s)",
        mode.name,
        mode.qps(),
        mode.latency.p50.as_secs_f64() * 1e6,
        mode.latency.p99.as_secs_f64() * 1e6,
        mode.requests,
        mode.elapsed.as_secs_f64(),
    );
    if let Some(stats) = &mode.stats {
        println!(
            "      inline {} / batched {} over {} batches (mean batch {:.2}), dropped {}, errors {}",
            stats.inline_scored,
            stats.batched(),
            stats.batches,
            stats.mean_batch_size(),
            stats.dropped,
            stats.errors,
        );
    }
}

/// Runs `threads` client threads against `work` until the deadline; each
/// call to `work` scores one request and its latency lands in a shared
/// lock-free [`ShardedHistogram`] (no per-thread sample vectors to merge).
fn drive_closed_loop(
    threads: usize,
    duration: Duration,
    plans: Arc<Vec<QueryPlan>>,
    sequences: Vec<Vec<usize>>,
    work: Arc<dyn Fn(&QueryPlan) + Send + Sync>,
) -> (u64, Duration, LatencyStats) {
    let start = Instant::now();
    let histogram = Arc::new(ShardedHistogram::new(Ladder::latency()));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let plans = Arc::clone(&plans);
            let sequence = sequences[t % sequences.len()].clone();
            let work = Arc::clone(&work);
            let histogram = Arc::clone(&histogram);
            std::thread::spawn(move || {
                let mut count = 0u64;
                let mut i = 0usize;
                while start.elapsed() < duration {
                    let plan = &plans[sequence[i % sequence.len()]];
                    let begin = Instant::now();
                    work(plan);
                    histogram.record_duration(begin.elapsed());
                    count += 1;
                    i += 1;
                }
                count
            })
        })
        .collect();
    let mut total = 0u64;
    for handle in handles {
        total += handle.join().unwrap();
    }
    (total, start.elapsed(), histogram.snapshot().latency_stats())
}

/// Replays an open-loop schedule: thread `t` handles every `threads`-th
/// arrival, sleeping until its scheduled time and then scoring (blocking).
fn drive_open_loop(
    threads: usize,
    schedule: Arc<Vec<ae_workload::Arrival>>,
    plans: Arc<Vec<QueryPlan>>,
    runtime: Arc<ScoringRuntime>,
) -> (u64, Duration, LatencyStats) {
    let start = Instant::now();
    let histogram = Arc::new(ShardedHistogram::new(Ladder::latency()));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let schedule = Arc::clone(&schedule);
            let plans = Arc::clone(&plans);
            let runtime = Arc::clone(&runtime);
            let histogram = Arc::clone(&histogram);
            std::thread::spawn(move || {
                let mut count = 0u64;
                for arrival in schedule.iter().skip(t).step_by(threads) {
                    if let Some(wait) = arrival.at.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let begin = Instant::now();
                    runtime
                        .score(&plans[arrival.query_index])
                        .expect("open-loop scoring");
                    histogram.record_duration(begin.elapsed());
                    count += 1;
                }
                count
            })
        })
        .collect();
    let mut total = 0u64;
    for handle in handles {
        total += handle.join().unwrap();
    }
    (total, start.elapsed(), histogram.snapshot().latency_stats())
}

fn write_json(path: &str, threads: usize, modes: &[ModeResult], speedup: f64) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"comment\": \"ae-serve serving benchmark. 'naive_one_at_a_time' reproduces the \
         pre-PR serving path (global mutex, model deep-cloned + re-decoded from the registry per \
         request); 'sequential_cached_mutex' caches the decoded model but still scores one plan \
         at a time; the ae_serve modes go through the concurrent batching runtime. On a 1-core \
         host the runtime's inline fast path (no queue round-trip) carries most requests and the \
         queue/batch machinery only absorbs overflow (its cross-thread handoff costs more than this small \
         model's inference, so sequential_cached_mutex can still edge it out); on multi-core \
         hosts the inline slots and batching workers score in parallel. Regenerate with: cargo \
         run --release -p ae-bench --bin bench_serving -- --json BENCH_serving.json\",\n",
    );
    out.push_str(&format!(
        "  \"host\": \"{}-core container (rustc 1.95, release profile)\",\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(&format!("  \"client_threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"speedup_vs_naive\": \"{speedup:.1}x (ae_serve_closed_loop over naive_one_at_a_time)\",\n"
    ));
    out.push_str("  \"modes\": [\n");
    for (i, mode) in modes.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", mode.name));
        out.push_str(&format!("      \"detail\": \"{}\",\n", mode.detail));
        out.push_str(&format!("      \"qps\": {:.1},\n", mode.qps()));
        out.push_str(&format!("      \"requests\": {},\n", mode.requests));
        out.push_str(&format!(
            "      \"p50_us\": {:.1},\n      \"p99_us\": {:.1},\n      \"mean_us\": {:.1}",
            mode.latency.p50.as_secs_f64() * 1e6,
            mode.latency.p99.as_secs_f64() * 1e6,
            mode.latency.mean.as_secs_f64() * 1e6,
        ));
        if let Some(stats) = &mode.stats {
            out.push_str(&format!(
                ",\n      \"mean_batch_size\": {:.2},\n      \"inline_scored\": {},\n      \
                 \"batched\": {},\n      \"dropped\": {},\n      \"batch_size_histogram\": {:?}",
                stats.mean_batch_size(),
                stats.inline_scored,
                stats.batched(),
                stats.dropped,
                stats.batch_size_histogram,
            ));
        }
        out.push_str("\n    }");
        out.push_str(if i + 1 < modes.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path).expect("create json output");
    file.write_all(out.as_bytes()).expect("write json output");
    println!("wrote {path}");
}

fn main() {
    let args = parse_args();
    let duration = Duration::from_secs_f64(args.seconds);

    let suite = resolve_suite(&args.family);
    println!(
        "==> training the parameter model ({}-query SF10 '{}' suite)",
        suite.len(),
        args.family
    );
    let mut config = AutoExecutorConfig::default();
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&suite, &config).expect("training");
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("serving", model.to_portable("serving").unwrap())
        .unwrap();

    // Score already-optimized plans (the rule runs last in the optimizer).
    let rewriter = Optimizer::with_default_rules();
    let plans: Arc<Vec<QueryPlan>> = Arc::new(
        suite
            .iter()
            .map(|q| rewriter.optimize(q.plan.clone()).unwrap().plan)
            .collect(),
    );
    let sequences = ClosedLoop::new(args.threads, 512, 1).sequences(plans.len());
    let candidate_counts = config.candidate_counts();
    let objective = config.objective;

    // --- Mode 1: naive one-at-a-time (pre-PR serving semantics). ---
    let naive = {
        let registry = Arc::clone(&registry);
        let gate = Mutex::new(());
        let counts = candidate_counts.clone();
        let work: Arc<dyn Fn(&QueryPlan) + Send + Sync> = Arc::new(move |plan: &QueryPlan| {
            let _one_at_a_time = gate.lock().unwrap();
            // Deep-clone fetch + re-decode per request: what every request
            // paid when `ModelRegistry::load` returned owned models.
            let portable = registry.load_owned("serving").unwrap();
            let model = ParameterModel::from_portable(&portable).unwrap();
            let features = autoexecutor::featurize_plan(plan);
            scoring::score_features(&model, &features, objective, &counts).unwrap();
        });
        let (requests, elapsed, latency) = drive_closed_loop(
            args.threads,
            duration,
            Arc::clone(&plans),
            sequences.clone(),
            work,
        );
        ModeResult {
            name: "naive_one_at_a_time",
            detail: "global mutex; model deep-cloned from registry and re-decoded per request",
            requests,
            elapsed,
            latency,
            stats: None,
        }
    };
    print_mode(&naive);

    // --- Mode 2: sequential scoring with a cached decoded model. ---
    let cached = {
        let portable = registry.load("serving").unwrap();
        let model = ParameterModel::from_portable(&portable).unwrap();
        let gate = Mutex::new(());
        let counts = candidate_counts.clone();
        let work: Arc<dyn Fn(&QueryPlan) + Send + Sync> = Arc::new(move |plan: &QueryPlan| {
            let _one_at_a_time = gate.lock().unwrap();
            let features = autoexecutor::featurize_plan(plan);
            scoring::score_features(&model, &features, objective, &counts).unwrap();
        });
        let (requests, elapsed, latency) = drive_closed_loop(
            args.threads,
            duration,
            Arc::clone(&plans),
            sequences.clone(),
            work,
        );
        ModeResult {
            name: "sequential_cached_mutex",
            detail: "global mutex; decoded model cached (pre-PR optimizer-rule cache)",
            requests,
            elapsed,
            latency,
            stats: None,
        }
    };
    print_mode(&cached);

    // --- Mode 3: the ae-serve runtime under closed-loop load. ---
    let metrics = Arc::new(MetricsRegistry::new());
    let mut runtime_config = RuntimeConfig::from_auto_executor(&config);
    if args.obs {
        runtime_config = runtime_config.with_observability(ObsConfig::new(Arc::clone(&metrics)));
        println!("==> observability ENABLED (metrics registry + event sink attached)");
    }
    let runtime = Arc::new(ScoringRuntime::new(
        Arc::clone(&registry),
        "serving",
        runtime_config,
    ));
    runtime.warm().expect("model warm-up");
    let closed = {
        let rt = Arc::clone(&runtime);
        let work: Arc<dyn Fn(&QueryPlan) + Send + Sync> = Arc::new(move |plan: &QueryPlan| {
            rt.score(plan).expect("closed-loop scoring");
        });
        let (requests, elapsed, latency) = drive_closed_loop(
            args.threads,
            duration,
            Arc::clone(&plans),
            sequences.clone(),
            work,
        );
        ModeResult {
            name: "ae_serve_closed_loop",
            detail: "batching runtime; clients issue the next request on completion",
            requests,
            elapsed,
            latency,
            stats: Some(runtime.stats()),
        }
    };
    print_mode(&closed);

    // --- Mode 4: open-loop Poisson replay at ~60 % of closed-loop qps. ---
    let open_rate = (closed.qps() * 0.6).max(50.0);
    let open_requests = ((open_rate * args.seconds) as usize).max(50);
    let schedule = Arc::new(OpenLoop::new(open_rate, open_requests, 2).schedule(plans.len()));
    let stats_before = runtime.stats();
    let open = {
        let (requests, elapsed, latency) = drive_open_loop(
            args.threads,
            schedule,
            Arc::clone(&plans),
            Arc::clone(&runtime),
        );
        let stats = runtime.stats().delta_since(&stats_before);
        ModeResult {
            name: "ae_serve_open_loop",
            detail: "batching runtime; Poisson arrivals at ~60% of closed-loop throughput",
            requests,
            elapsed,
            latency,
            stats: Some(stats),
        }
    };
    print_mode(&open);

    let final_stats = runtime.stats();
    if args.obs {
        let obs = runtime.observability().expect("obs enabled");
        let events = obs.events().snapshot();
        let snap = metrics.snapshot();
        println!(
            "==> obs: {} events retained, {} registry metrics, completed counter {:?}",
            events.len(),
            snap.values().len(),
            snap.counter("serve.completed"),
        );
    }
    let speedup = closed.qps() / naive.qps().max(1e-9);
    println!(
        "==> ae_serve_closed_loop vs naive_one_at_a_time: {speedup:.1}x sustained qps at {} client threads",
        args.threads
    );

    let modes = [naive, cached, closed, open];
    if let Some(path) = &args.json {
        write_json(path, args.threads, &modes, speedup);
    }

    if args.smoke {
        let closed = &modes[2];
        let mut failures = Vec::new();
        if closed.qps() <= 0.0 {
            failures.push("runtime qps must be positive".to_string());
        }
        if final_stats.dropped != 0 {
            failures.push(format!("{} dropped requests", final_stats.dropped));
        }
        if final_stats.errors != 0 {
            failures.push(format!("{} scoring errors", final_stats.errors));
        }
        if !failures.is_empty() {
            eprintln!("serving smoke FAILED: {}", failures.join("; "));
            std::process::exit(1);
        }
        println!("serving smoke OK (qps > 0, zero dropped, zero errors)");
    }
}
