//! QoS serving benchmark: per-service-level latency, deadline-miss rate,
//! and shed rate of the `ae-serve` runtime under open-loop load.
//!
//! Four phases:
//!
//! * **calibrate** — a short closed-loop burst measures the runtime's
//!   sustained capacity on this host.
//! * **moderate** — a Poisson open-loop replay at a fraction of capacity
//!   (`--moderate-fraction`, default 0.25), blocking submission. The SLA
//!   claim at this load: `Interactive` finishes inside its deadline
//!   budget — zero misses.
//! * **overload** — a Poisson open-loop replay *above* capacity
//!   (`--overload-factor`, default 2.0), non-blocking submission. Queues
//!   saturate; the runtime sheds `BestEffort` first and keeps
//!   `Interactive` p99 below `BestEffort` p99 (asserted by `--smoke`).
//! * **fairness** — a dedicated runtime with a per-tenant token-bucket
//!   policy: one flooding tenant against one in-rate tenant. The flood is
//!   demoted to `BestEffort` and shed; the in-rate tenant must complete
//!   every request (asserted by `--smoke`). The moderate/overload phases
//!   run with fairness *off* so they measure pure level scheduling; their
//!   tenant tags exercise the mix plumbing only.
//!
//! Requests are tagged with a service-level/tenant mix by
//! [`ae_workload::OpenLoop::schedule_tagged`]; per-level latencies are
//! recorded client-side, deadline misses and sheds come from the runtime's
//! per-level counters. A per-query price menu (the level's executor count,
//! predicted run time, and executor-seconds price derived from the
//! predicted curve) is printed and recorded alongside.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ae-bench --bin bench_qos                 # full run
//! cargo run --release -p ae-bench --bin bench_qos -- --smoke      # CI gate
//! cargo run --release -p ae-bench --bin bench_qos -- --json BENCH_qos.json
//! ```
//!
//! `--smoke` shortens every phase and exits non-zero unless: every
//! recorded rate is finite, `Interactive` holds its deadline budget at
//! moderate load (miss rate ≤ 0.1 %, absorbing single-core OS jitter;
//! the recorded full runs show zero misses), `Interactive` p99 <
//! `BestEffort` p99 under overload, and the in-rate tenant of the
//! fairness phase is never starved.

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ae_engine::plan::QueryPlan;
use ae_obs::{AtomicHistogram, Ladder, LatencyStats, ShardedHistogram};
use ae_serve::{
    LevelStats, QosConfig, RuntimeConfig, ScoreRequest, ScoringRuntime, ServeError, ServiceLevel,
    TenantId, TenantPolicy,
};
use ae_workload::{
    ClosedLoop, OpenLoop, ScaleFactor, TaggedArrival, WeightedMix, WorkloadGenerator,
};
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

/// Per-level arrays and the tagged schedule's `level_index` both use
/// [`ServiceLevel::index`] order (`BestEffort` = 0, `Standard` = 1,
/// `Interactive` = 2) — the same order as `ae_serve::RuntimeStats::levels`.
/// Display iterates highest-priority-first.
const DISPLAY_ORDER: [ServiceLevel; ServiceLevel::COUNT] = [
    ServiceLevel::Interactive,
    ServiceLevel::Standard,
    ServiceLevel::BestEffort,
];

/// Level mix in [`ServiceLevel::index`] order: 40 % best-effort, 50 %
/// standard, 10 % interactive (the premium tier is deliberately small, as
/// in a real tiered offering, and comfortably inside its 8/13 drain share
/// even at 2x overload).
const LEVEL_WEIGHTS: [f64; ServiceLevel::COUNT] = [0.4, 0.5, 0.1];

/// Tenants in the replayed stream (uniform mix).
const TENANTS: usize = 4;

struct Args {
    smoke: bool,
    threads: usize,
    seconds: f64,
    moderate_fraction: f64,
    overload_factor: f64,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: 4,
        seconds: 3.0,
        moderate_fraction: 0.25,
        overload_factor: 2.0,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--seconds" => {
                args.seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds needs a number");
            }
            "--moderate-fraction" => {
                args.moderate_fraction = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--moderate-fraction needs a number");
            }
            "--overload-factor" => {
                args.overload_factor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--overload-factor needs a number");
            }
            "--json" => args.json = it.next(),
            other => panic!("unknown argument: {other}"),
        }
    }
    if args.smoke {
        args.seconds = args.seconds.min(0.8);
    }
    args
}

/// Per-level measurements of one phase: offered volume and client-side
/// latency wrap the runtime's own per-level counters.
#[derive(Debug, Clone, Default)]
struct LevelResult {
    offered: u64,
    latency: LatencyStats,
    stats: LevelStats,
}

impl LevelResult {
    fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.stats.shed as f64 / self.offered as f64
    }
}

/// One phase: the offered rate and per-level outcomes.
struct PhaseResult {
    name: &'static str,
    rate_qps: f64,
    elapsed: Duration,
    saturated_drops: u64,
    per_level: [LevelResult; 3],
}

fn print_phase(phase: &PhaseResult) {
    println!(
        "phase: {:<9} offered {:>8.0} qps over {:.2}s, {} saturated drops",
        phase.name,
        phase.rate_qps,
        phase.elapsed.as_secs_f64(),
        phase.saturated_drops,
    );
    for level in DISPLAY_ORDER {
        let r = &phase.per_level[level.index()];
        println!(
            "       {:<12} offered {:>6}  completed {:>6}  p50 {:>8.1} µs  p99 {:>9.1} µs  \
             miss rate {:>6.3}  shed {:>5} ({:.3})",
            level.name(),
            r.offered,
            r.stats.completed,
            r.latency.p50.as_secs_f64() * 1e6,
            r.latency.p99.as_secs_f64() * 1e6,
            r.stats.miss_rate(),
            r.stats.shed,
            r.shed_rate(),
        );
    }
}

/// Redeems one ticket: records the runtime-observed latency under the
/// *served* level (demotions count against `BestEffort`, not the requested
/// level) unless the ticket belongs to the warm-up prefix, and ignores
/// shed/shutdown results (the runtime's counters account them).
fn redeem(histograms: &[ShardedHistogram; 3], record: bool, ticket: ae_serve::ScoreTicket) {
    match ticket.wait() {
        Ok(outcome) => {
            if record {
                histograms[outcome.level.index()].record_duration(outcome.latency);
            }
        }
        Err(ServeError::Shed) | Err(ServeError::ShutDown) => {}
        Err(other) => panic!("unexpected serving error: {other}"),
    }
}

/// Replays a tagged open-loop schedule: thread `t` handles every
/// `threads`-th arrival, sleeping until its scheduled time, then submitting
/// with the arrival's level and tenant.
///
/// `blocking` selects the submission discipline. Blocking mode uses
/// synchronous `submit` (backpressure — the moderate-load SLA regime).
/// Non-blocking mode uses *detached* fire-and-forget submission
/// (`try_submit_detached`): arrivals keep their schedule instead of being
/// throttled by completion waits, which is what actually drives the
/// runtime's queues into saturation; tickets are redeemed on a bounded
/// outstanding window so memory stays flat. In non-blocking mode the
/// first quarter of the schedule is a **warm-up**: its completions are
/// excluded from the latency recorders, so steady-state saturation — not
/// the low-latency fill-up transient before the queues pin — is what the
/// per-level percentiles describe. Latency is the runtime's own
/// admission-to-fulfillment measurement in both modes.
///
/// Returns per-level latency summaries, per-level offered counts, and the
/// elapsed wall-clock. Latencies land in shared per-level lock-free
/// [`ShardedHistogram`]s — no per-thread sample vectors to merge.
fn drive_tagged_open_loop(
    threads: usize,
    schedule: Arc<Vec<TaggedArrival>>,
    plans: Arc<Vec<QueryPlan>>,
    runtime: Arc<ScoringRuntime>,
    blocking: bool,
) -> ([LatencyStats; 3], [u64; 3], Duration) {
    const OUTSTANDING_WINDOW: usize = 4096;
    let warmup = if blocking { 0 } else { schedule.len() / 4 };
    let start = Instant::now();
    let histograms: Arc<[ShardedHistogram; 3]> = Arc::new(std::array::from_fn(|_| {
        ShardedHistogram::new(Ladder::latency())
    }));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let schedule = Arc::clone(&schedule);
            let plans = Arc::clone(&plans);
            let runtime = Arc::clone(&runtime);
            let histograms = Arc::clone(&histograms);
            std::thread::spawn(move || {
                let mut offered = [0u64; 3];
                let mut outstanding: std::collections::VecDeque<(bool, ae_serve::ScoreTicket)> =
                    std::collections::VecDeque::new();
                for (position, arrival) in schedule.iter().enumerate().skip(t).step_by(threads) {
                    if let Some(wait) = arrival.at.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let level = ServiceLevel::from_index(arrival.level_index)
                        .expect("mix classes match the service levels");
                    let request = ScoreRequest::from_plan(&plans[arrival.query_index])
                        .with_level(level)
                        .with_tenant(TenantId(arrival.tenant_index as u64));
                    offered[arrival.level_index] += 1;
                    if blocking {
                        match runtime.submit(request) {
                            Ok(outcome) => {
                                histograms[outcome.level.index()].record_duration(outcome.latency)
                            }
                            Err(ServeError::Shed) => {}
                            Err(other) => panic!("unexpected serving error: {other}"),
                        }
                    } else {
                        match runtime.try_submit_detached(request) {
                            Ok(ticket) => outstanding.push_back((position >= warmup, ticket)),
                            Err(ServeError::Saturated) => {}
                            Err(other) => panic!("unexpected serving error: {other}"),
                        }
                        if outstanding.len() >= OUTSTANDING_WINDOW {
                            let (record, ticket) = outstanding.pop_front().unwrap();
                            redeem(&histograms, record, ticket);
                        }
                    }
                }
                for (record, ticket) in outstanding {
                    redeem(&histograms, record, ticket);
                }
                offered
            })
        })
        .collect();
    let mut offered = [0u64; 3];
    for handle in handles {
        let counts = handle.join().unwrap();
        for (into, from) in offered.iter_mut().zip(counts) {
            *into += from;
        }
    }
    let latencies = std::array::from_fn(|i| histograms[i].snapshot().latency_stats());
    (latencies, offered, start.elapsed())
}

/// Runs one open-loop phase and assembles per-level results from the
/// client-side recorders plus the runtime's counter delta.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    name: &'static str,
    rate_qps: f64,
    seconds: f64,
    seed: u64,
    threads: usize,
    plans: &Arc<Vec<QueryPlan>>,
    runtime: &Arc<ScoringRuntime>,
    blocking: bool,
) -> PhaseResult {
    let requests = ((rate_qps * seconds) as usize).max(100);
    let levels = WeightedMix::new(LEVEL_WEIGHTS.to_vec());
    let tenants = WeightedMix::uniform(TENANTS);
    let schedule = Arc::new(OpenLoop::new(rate_qps, requests, seed).schedule_tagged(
        plans.len(),
        &levels,
        &tenants,
    ));
    let before = runtime.stats();
    let (latencies, offered, elapsed) = drive_tagged_open_loop(
        threads,
        schedule,
        Arc::clone(plans),
        Arc::clone(runtime),
        blocking,
    );
    let mut per_level: [LevelResult; 3] = Default::default();
    let delta = runtime.stats().delta_since(&before);
    for (i, latency) in latencies.into_iter().enumerate() {
        let level = ServiceLevel::from_index(i).expect("per-level arrays use index order");
        per_level[i] = LevelResult {
            offered: offered[i],
            latency,
            stats: *delta.level(level),
        };
    }
    PhaseResult {
        name,
        rate_qps,
        elapsed,
        saturated_drops: delta.dropped,
        per_level,
    }
}

/// Outcome of the dedicated tenant-fairness phase.
struct FairnessResult {
    policy_rate_qps: f64,
    policy_burst: f64,
    heavy_offered: u64,
    heavy_completed: u64,
    heavy_rejected: u64,
    demoted: u64,
    shed: u64,
    light_offered: u64,
    light_completed: u64,
    light_p99: Duration,
}

/// Requests each flood thread issues in the fairness phase.
const FLOOD_REQUESTS_PER_THREAD: usize = 1500;
/// Requests the in-rate tenant issues in the fairness phase.
const LIGHT_REQUESTS: usize = 128;

/// Runs the fairness phase on its own runtime: `threads` flood threads
/// hammer `try_submit` as tenant 0 at `Interactive` (far beyond the
/// token-bucket allowance, so the flood is demoted to `BestEffort` and
/// shed under the tight queue), while tenant 1 submits spaced in-burst
/// `Standard` requests that must all complete.
///
/// The policy is a pure burst allowance (`rate_qps = 0`) and both sides
/// issue fixed request *counts*, so the phase's outcome does not depend
/// on wall-clock speed: the flood always exceeds the 256-token burst by
/// thousands of requests (guaranteed demotions) and the in-rate tenant
/// always stays inside it (guaranteed grants), however slowly a loaded
/// host executes them.
fn run_fairness_phase(
    registry: &Arc<ModelRegistry>,
    config: &AutoExecutorConfig,
    plans: &Arc<Vec<QueryPlan>>,
    threads: usize,
) -> FairnessResult {
    let policy = TenantPolicy::demote(0.0, 256.0);
    let runtime = Arc::new(ScoringRuntime::new(
        Arc::clone(registry),
        "qos",
        RuntimeConfig::from_auto_executor(config)
            .with_workers(1)
            .with_queue_capacity(64)
            .with_inline_when_idle(false)
            .with_qos(QosConfig::default().with_fairness(policy)),
    ));
    runtime.warm().expect("model warm-up");
    let heavy = TenantId(0);
    let light = TenantId(1);
    let flood: Vec<_> = (0..threads.max(1))
        .map(|t| {
            let runtime = Arc::clone(&runtime);
            let plans = Arc::clone(plans);
            std::thread::spawn(move || {
                let (mut offered, mut completed) = (0u64, 0u64);
                for i in 0..FLOOD_REQUESTS_PER_THREAD {
                    offered += 1;
                    let request = ScoreRequest::from_plan(&plans[(t + i) % plans.len()])
                        .with_level(ServiceLevel::Interactive)
                        .with_tenant(heavy);
                    match runtime.try_submit(request) {
                        Ok(_) => completed += 1,
                        Err(ServeError::Shed) | Err(ServeError::Saturated) => {}
                        Err(other) => panic!("unexpected error under flood: {other}"),
                    }
                }
                (offered, completed)
            })
        })
        .collect();
    // Starvation of the blocking in-rate submitter would manifest as an
    // unbounded wait (hanging the bench), an error, or huge latency — so
    // besides requiring every submit to return Ok at the requested level,
    // the smoke bounds the in-rate tenant's p99 below.
    let light_histogram = AtomicHistogram::new(Ladder::latency());
    let (mut light_offered, mut light_completed) = (0u64, 0u64);
    while light_offered < LIGHT_REQUESTS as u64 {
        light_offered += 1;
        let outcome = runtime
            .submit(
                ScoreRequest::from_plan(&plans[light_offered as usize % plans.len()])
                    .with_level(ServiceLevel::Standard)
                    .with_tenant(light),
            )
            .expect("the in-rate tenant must never be starved");
        assert_eq!(outcome.level, ServiceLevel::Standard, "no demotion in-rate");
        light_histogram.record_duration(outcome.latency);
        light_completed += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    let (mut heavy_offered, mut heavy_completed) = (0u64, 0u64);
    for handle in flood {
        let (offered, completed) = handle.join().unwrap();
        heavy_offered += offered;
        heavy_completed += completed;
    }
    let stats = runtime.stats();
    runtime.shutdown();
    FairnessResult {
        policy_rate_qps: policy.rate_qps,
        policy_burst: policy.burst,
        heavy_offered,
        heavy_completed,
        heavy_rejected: heavy_offered - heavy_completed,
        demoted: stats.demoted,
        shed: stats.shed(),
        light_offered,
        light_completed,
        light_p99: light_histogram.snapshot().latency_stats().p99,
    }
}

fn print_fairness(fairness: &FairnessResult) {
    println!(
        "phase: fairness  token bucket {} qps / burst {} per tenant",
        fairness.policy_rate_qps, fairness.policy_burst
    );
    println!(
        "       flooding tenant: offered {:>7}  completed {:>6}  shed/dropped {:>7}  demoted {:>6}",
        fairness.heavy_offered, fairness.heavy_completed, fairness.heavy_rejected, fairness.demoted,
    );
    println!(
        "       in-rate tenant:  offered {:>7}  completed {:>6}  p99 {:>8.1} µs  (zero starvation)",
        fairness.light_offered,
        fairness.light_completed,
        fairness.light_p99.as_secs_f64() * 1e6,
    );
}

/// A per-level price menu row for one representative query.
struct QuoteRow {
    query: String,
    level: ServiceLevel,
    executors: usize,
    predicted_seconds: f64,
    price: f64,
    multiplier: f64,
}

fn quote_menu(
    runtime: &ScoringRuntime,
    names: &[&str],
    plans: &[(String, QueryPlan)],
) -> Vec<QuoteRow> {
    let mut rows = Vec::new();
    for &name in names {
        let Some((_, plan)) = plans.iter().find(|(n, _)| n == name) else {
            continue;
        };
        for level in DISPLAY_ORDER {
            let outcome = runtime
                .submit(ScoreRequest::from_plan(plan).with_level(level))
                .expect("menu scoring");
            let quote = outcome.quote().expect("predicted curve is non-empty");
            rows.push(QuoteRow {
                query: name.to_string(),
                level,
                executors: quote.executors,
                predicted_seconds: quote.predicted_seconds,
                price: quote.price,
                multiplier: quote.multiplier,
            });
        }
    }
    rows
}

fn write_json(
    path: &str,
    threads: usize,
    capacity_qps: f64,
    phases: &[PhaseResult],
    fairness: &FairnessResult,
    quotes: &[QuoteRow],
) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"comment\": \"ae-serve QoS benchmark: per-service-level latency, deadline-miss \
         rate, and shed rate under tagged Poisson open-loop load. 'moderate' replays at a \
         fraction of the measured closed-loop capacity with blocking submission (the SLA \
         regime: Interactive must miss zero deadlines); 'overload' replays above capacity \
         with non-blocking submission (the shedding regime: BestEffort is shed first and \
         Interactive p99 stays below BestEffort p99). Both run with tenant fairness OFF \
         (tenant tags exercise the mix plumbing only); 'fairness' is a dedicated phase on \
         its own runtime with a per-tenant token bucket: a flooding tenant is demoted and \
         shed while an in-rate tenant completes every request. Regenerate with: cargo run \
         --release -p ae-bench --bin bench_qos -- --json BENCH_qos.json\",\n",
    );
    out.push_str(&format!(
        "  \"host\": \"{}-core container (rustc 1.95, release profile)\",\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(&format!("  \"client_threads\": {threads},\n"));
    out.push_str(&format!("  \"capacity_qps\": {capacity_qps:.0},\n"));
    out.push_str(&format!(
        "  \"level_mix\": {{\"interactive\": {}, \"standard\": {}, \"best_effort\": {}}},\n",
        LEVEL_WEIGHTS[ServiceLevel::Interactive.index()],
        LEVEL_WEIGHTS[ServiceLevel::Standard.index()],
        LEVEL_WEIGHTS[ServiceLevel::BestEffort.index()]
    ));
    out.push_str(&format!("  \"tenants_in_mix\": {TENANTS},\n"));
    out.push_str("  \"phases\": [\n");
    for (pi, phase) in phases.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", phase.name));
        out.push_str(&format!("      \"offered_qps\": {:.1},\n", phase.rate_qps));
        out.push_str(&format!(
            "      \"saturated_drops\": {},\n",
            phase.saturated_drops
        ));
        out.push_str("      \"per_level\": [\n");
        for (i, level) in DISPLAY_ORDER.iter().enumerate() {
            let r = &phase.per_level[level.index()];
            out.push_str(&format!(
                "        {{\"level\": \"{}\", \"offered\": {}, \"completed\": {}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"deadline_misses\": {}, \
                 \"deadline_miss_rate\": {:.4}, \"shed\": {}, \"shed_rate\": {:.4}}}{}\n",
                level.name(),
                r.offered,
                r.stats.completed,
                r.latency.p50.as_secs_f64() * 1e6,
                r.latency.p99.as_secs_f64() * 1e6,
                r.stats.deadline_misses,
                r.stats.miss_rate(),
                r.stats.shed,
                r.shed_rate(),
                if i + 1 < DISPLAY_ORDER.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if pi + 1 < phases.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"fairness\": {{\"policy_rate_qps\": {}, \"policy_burst\": {}, \
         \"heavy_offered\": {}, \"heavy_completed\": {}, \"heavy_shed_or_dropped\": {}, \
         \"demoted\": {}, \"shed\": {}, \"light_offered\": {}, \"light_completed\": {}, \
         \"light_p99_us\": {:.1}}},\n",
        fairness.policy_rate_qps,
        fairness.policy_burst,
        fairness.heavy_offered,
        fairness.heavy_completed,
        fairness.heavy_rejected,
        fairness.demoted,
        fairness.shed,
        fairness.light_offered,
        fairness.light_completed,
        fairness.light_p99.as_secs_f64() * 1e6,
    ));
    out.push_str("  \"price_menu\": [\n");
    for (i, row) in quotes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"level\": \"{}\", \"executors\": {}, \
             \"predicted_seconds\": {:.2}, \"price\": {:.2}, \"multiplier\": {:.2}}}{}\n",
            row.query,
            row.level.name(),
            row.executors,
            row.predicted_seconds,
            row.price,
            row.multiplier,
            if i + 1 < quotes.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path).expect("create json output");
    file.write_all(out.as_bytes()).expect("write json output");
    println!("wrote {path}");
}

fn main() {
    let args = parse_args();

    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let suite = generator.suite();
    println!(
        "==> training the parameter model ({}-query SF10 tpcds suite)",
        suite.len()
    );
    let mut config = AutoExecutorConfig::default();
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&suite, &config).expect("training");
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("qos", model.to_portable("qos").unwrap())
        .unwrap();

    let rewriter = Optimizer::with_default_rules();
    let named_plans: Vec<(String, QueryPlan)> = suite
        .iter()
        .map(|q| {
            (
                q.name.clone(),
                rewriter.optimize(q.plan.clone()).unwrap().plan,
            )
        })
        .collect();
    let plans: Arc<Vec<QueryPlan>> = Arc::new(named_plans.iter().map(|(_, p)| p.clone()).collect());

    let runtime = Arc::new(ScoringRuntime::new(
        Arc::clone(&registry),
        "qos",
        RuntimeConfig::from_auto_executor(&config),
    ));
    runtime.warm().expect("model warm-up");

    // --- Calibration: short closed-loop burst to measure capacity. ---
    let calibration_seconds = (args.seconds * 0.3).max(0.2);
    let sequences = ClosedLoop::new(args.threads, 512, 1).sequences(plans.len());
    let start = Instant::now();
    let deadline = Duration::from_secs_f64(calibration_seconds);
    let handles: Vec<_> = (0..args.threads)
        .map(|t| {
            let plans = Arc::clone(&plans);
            let runtime = Arc::clone(&runtime);
            let sequence = sequences[t % sequences.len()].clone();
            std::thread::spawn(move || {
                let mut count = 0u64;
                let mut i = 0usize;
                while start.elapsed() < deadline {
                    runtime
                        .score(&plans[sequence[i % sequence.len()]])
                        .expect("calibration scoring");
                    count += 1;
                    i += 1;
                }
                count
            })
        })
        .collect();
    let calibration_requests: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let capacity_qps = calibration_requests as f64 / start.elapsed().as_secs_f64().max(1e-9);
    println!(
        "==> calibrated capacity: {capacity_qps:.0} qps at {} client threads",
        args.threads
    );

    // --- Moderate load: blocking submission at a fraction of capacity. ---
    let moderate = run_phase(
        "moderate",
        (capacity_qps * args.moderate_fraction).max(50.0),
        args.seconds,
        11,
        args.threads,
        &plans,
        &runtime,
        true,
    );
    print_phase(&moderate);

    // --- Overload: non-blocking submission above capacity. ---
    let overload = run_phase(
        "overload",
        (capacity_qps * args.overload_factor).max(200.0),
        args.seconds,
        12,
        args.threads,
        &plans,
        &runtime,
        false,
    );
    print_phase(&overload);

    // --- Fairness: flooding tenant vs in-rate tenant on a policed runtime. ---
    let fairness = run_fairness_phase(&registry, &config, &plans, args.threads);
    print_fairness(&fairness);

    // --- Price menu for three representative queries. ---
    let quotes = quote_menu(&runtime, &["q1", "q42", "q88"], &named_plans);
    println!("==> price menu (executor-seconds, derived from each query's predicted curve)");
    for row in &quotes {
        println!(
            "       {:<6} {:<12} n={:<3} t={:>7.1}s  price {:>8.1}  ({:.2}x best-effort)",
            row.query,
            row.level.name(),
            row.executors,
            row.predicted_seconds,
            row.price,
            row.multiplier,
        );
    }

    let phases = [moderate, overload];
    if let Some(path) = &args.json {
        write_json(
            path,
            args.threads,
            capacity_qps,
            &phases,
            &fairness,
            &quotes,
        );
    }

    if args.smoke {
        let mut failures = Vec::new();
        let moderate = &phases[0];
        let overload = &phases[1];
        for phase in &phases {
            for level in ServiceLevel::ALL {
                let r = &phase.per_level[level.index()];
                if !r.stats.miss_rate().is_finite() || !r.shed_rate().is_finite() {
                    failures.push(format!(
                        "{}/{}: non-finite miss or shed rate",
                        phase.name,
                        level.name()
                    ));
                }
            }
        }
        let interactive_moderate = &moderate.per_level[ServiceLevel::Interactive.index()];
        // The budget must hold at moderate load. A ≤0.1 % allowance
        // absorbs single-core OS scheduling jitter (a 10 ms preemption
        // landing inside one µs-scale request); a real scheduling
        // regression produces miss rates orders of magnitude higher.
        if interactive_moderate.stats.miss_rate() > 0.001 {
            failures.push(format!(
                "moderate load: Interactive deadline-miss rate {:.4} ({} misses) exceeds the                  0.001 jitter allowance",
                interactive_moderate.stats.miss_rate(),
                interactive_moderate.stats.deadline_misses
            ));
        }
        if interactive_moderate.stats.completed == 0 {
            failures.push("moderate load: no Interactive request completed".to_string());
        }
        let interactive_p99 = overload.per_level[ServiceLevel::Interactive.index()]
            .latency
            .p99;
        let best_effort_p99 = overload.per_level[ServiceLevel::BestEffort.index()]
            .latency
            .p99;
        if overload.per_level[ServiceLevel::BestEffort.index()]
            .latency
            .count
            == 0
        {
            failures.push("overload: no BestEffort completion past warm-up".to_string());
        } else if interactive_p99 >= best_effort_p99 {
            failures.push(format!(
                "overload: Interactive p99 ({:.1} µs) must be strictly below BestEffort p99 ({:.1} µs)",
                interactive_p99.as_secs_f64() * 1e6,
                best_effort_p99.as_secs_f64() * 1e6,
            ));
        }
        // light_completed tracks light_offered in lockstep (a blocking
        // submit either returns Ok or hangs the phase), so starvation is
        // gated on the falsifiable signals: some progress was made and
        // the in-rate tenant's tail latency stayed bounded despite the
        // flood (a starved submitter's waits grow without bound).
        if fairness.light_completed == 0 {
            failures.push("fairness: the in-rate tenant made no progress".to_string());
        }
        if fairness.light_p99 > Duration::from_millis(100) {
            failures.push(format!(
                "fairness: in-rate tenant p99 {:.1} ms exceeds the 100 ms starvation bound",
                fairness.light_p99.as_secs_f64() * 1e3
            ));
        }
        if fairness.demoted == 0 {
            failures.push("fairness: the flooding tenant was never demoted".to_string());
        }
        if !failures.is_empty() {
            eprintln!("qos smoke FAILED: {}", failures.join("; "));
            std::process::exit(1);
        }
        println!(
            "qos smoke OK (finite rates, Interactive holds its budget at moderate load, \
             Interactive p99 < BestEffort p99 under overload, in-rate tenant never starved)"
        );
    }
}
