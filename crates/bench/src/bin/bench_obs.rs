//! Observability benchmark: serving-trace capture/replay determinism and
//! the measured overhead of attaching `ae-obs` to the scoring runtime.
//!
//! Phases:
//!
//! 1. **Capture** — train a model on an SF10 TPC-DS subset, serve a
//!    multi-threaded request stream through `ae-serve` with observability
//!    attached, and record every request's envelope + outcome into an
//!    [`ae_obs::ServingTrace`] (ground-truth actual curves come from
//!    deterministic simulation over the candidate counts).
//! 2. **Roundtrip** — `parse(render(trace))` must equal the trace exactly
//!    and re-render to the identical string (bit-exact f64 encoding).
//! 3. **Determinism gate** — replay the trace under its own capture
//!    configuration, re-scoring every completed request from the captured
//!    features via the single-query scoring path; every executor count,
//!    predicted-runtime bit, price bit, and miss flag must reproduce
//!    ([`ae_obs::ReplayRun::verify_against_capture`] returns no mismatches).
//! 4. **Alternative configs** — replay the same trace with (a) halved
//!    deadline budgets and (b) a `MinTime` selection objective, and diff
//!    SLO/accuracy/revenue against the baseline without re-simulation.
//! 5. **Drift** — feed the baseline replay's predicted-vs-actual pairs
//!    into an `ae-ppm` [`ResidualMonitor`] and report the drift signal.
//! 6. **Overhead A/B** — closed-loop qps of the runtime with and without
//!    observability attached; the regression percentage is the headline
//!    overhead number.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ae-bench --bin bench_obs            # full run
//! cargo run --release -p ae-bench --bin bench_obs -- --smoke # CI gate
//! cargo run --release -p ae-bench --bin bench_obs -- --json BENCH_obs.json
//! ```
//!
//! `--smoke` shortens every phase and exits non-zero unless the roundtrip
//! holds, the determinism gate reports zero mismatches, the strict-budget
//! replay does not *reduce* misses, and the measured overhead stays under
//! the smoke bound (generous, to absorb CI noise; the full run records the
//! precise number in `BENCH_obs.json`).

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ae_obs::{
    feature_digest, replay, MetricsRegistry, ReplayDiff, ReplayPolicy, ReplayRun, ReplayScore,
    RequestStatus, ServingTrace, TraceMeta, TraceQuery, TraceRecord, TraceRecorder, TRACE_LEVELS,
};
use ae_ppm::{ResidualMonitor, SelectionObjective};
use ae_serve::{
    price_quote_parts, ObsConfig, QosConfig, RuntimeConfig, ScoreRequest, ScoringRuntime,
    ServiceLevel,
};
use ae_workload::{QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::evaluation::ActualRuns;
use autoexecutor::prelude::*;
use autoexecutor::scoring;
use autoexecutor::ModelRegistry;

struct Args {
    smoke: bool,
    threads: usize,
    seconds: f64,
    requests: u64,
    queries: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: 4,
        seconds: 2.0,
        requests: 480,
        queries: 32,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--seconds" => {
                args.seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds needs a number");
            }
            "--requests" => {
                args.requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a number");
            }
            "--queries" => {
                args.queries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queries needs a number");
            }
            "--json" => args.json = it.next(),
            other => panic!("unknown argument: {other}"),
        }
    }
    if args.smoke {
        args.seconds = args.seconds.min(0.8);
        args.requests = args.requests.min(120);
        args.queries = args.queries.min(12);
    }
    args
}

/// Overhead bound asserted by `--smoke`. Deliberately looser than the 5%
/// acceptance target measured on quiet hosts: a short smoke A/B on a noisy
/// CI machine carries several percent of run-to-run jitter of its own.
const SMOKE_OVERHEAD_BOUND_PCT: f64 = 10.0;

/// Exact curve lookup at a candidate count. Both capture and replay derive
/// `predicted_secs` through this same function, so the determinism gate
/// compares like with like.
fn curve_at(curve: &[(usize, f64)], n: usize) -> Option<f64> {
    curve.iter().find(|&&(c, _)| c == n).map(|&(_, t)| t)
}

/// Re-scores each completed record of `trace` from its captured features —
/// the single-query scoring path, bit-identical to the batched serving
/// path — and prices the result at the record's requested level with the
/// trace's own pricing inputs.
fn capture_config_scorer<'a>(
    trace: &ServingTrace,
    model: &'a ParameterModel,
    objective: SelectionObjective,
    counts: &'a [usize],
) -> impl FnMut(usize, &TraceQuery) -> Option<ReplayScore> + 'a {
    let slowdown_targets = trace.meta.slowdown_targets;
    let unit_price = trace.meta.unit_price;
    let mut levels = trace
        .records
        .iter()
        .filter(|r| r.status == RequestStatus::Completed)
        .map(|r| r.level)
        .collect::<Vec<u8>>()
        .into_iter();
    move |_, query| {
        let level = ServiceLevel::from_index(levels.next()? as usize)?;
        let scored = scoring::score_features(model, &query.features, objective, counts).ok()?;
        let request = scored.request;
        let predicted_secs = curve_at(&request.predicted_curve, request.executors)?;
        let price = price_quote_parts(
            &request.predicted_curve,
            level,
            &slowdown_targets,
            unit_price,
        )
        .map_or(0.0, |quote| quote.price);
        Some(ReplayScore {
            executors: request.executors as u32,
            predicted_secs,
            price,
        })
    }
}

/// One closed-loop slice against `runtime` at `threads` clients — the
/// work loop is identical on both sides of the overhead A/B.
fn closed_loop_slice(
    runtime: &Arc<ScoringRuntime>,
    features: &Arc<Vec<Vec<f64>>>,
    threads: usize,
    duration: Duration,
) -> (u64, Duration) {
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let runtime = Arc::clone(runtime);
            let features = Arc::clone(features);
            std::thread::spawn(move || {
                let mut count = 0u64;
                let mut i = t;
                while start.elapsed() < duration {
                    let level = ServiceLevel::from_index(i % ServiceLevel::COUNT).unwrap();
                    runtime
                        .submit(
                            ScoreRequest::from_features(features[i % features.len()].clone())
                                .with_level(level),
                        )
                        .expect("overhead-loop scoring");
                    count += 1;
                    i += 1;
                }
                count
            })
        })
        .collect();
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    (total, start.elapsed())
}

/// Closed-loop qps of the two runtimes, measured in alternating slices so
/// slow host drift (scheduling, thermal, background load) hits both sides
/// equally instead of biasing whichever ran second. The overhead estimate
/// is the *median* of the per-slice-pair regressions — a single descheduled
/// slice then shifts one sample instead of the whole A/B.
fn interleaved_ab_qps(
    off: &Arc<ScoringRuntime>,
    on: &Arc<ScoringRuntime>,
    features: &Arc<Vec<Vec<f64>>>,
    threads: usize,
    per_side: Duration,
) -> (f64, f64, f64) {
    const SLICES: u32 = 16;
    let slice = per_side / SLICES;
    let (mut off_total, mut on_total) = (0u64, 0u64);
    let (mut off_elapsed, mut on_elapsed) = (Duration::ZERO, Duration::ZERO);
    let mut overheads = Vec::with_capacity(SLICES as usize);
    for pair in 0..SLICES {
        // Alternate which side runs first: monotone drift inside a pair
        // otherwise always penalises whichever side is measured second.
        let measure = |runtime: &Arc<ScoringRuntime>| {
            let (count, elapsed) = closed_loop_slice(runtime, features, threads, slice);
            (
                count,
                elapsed,
                count as f64 / elapsed.as_secs_f64().max(1e-9),
            )
        };
        let (off_res, on_res) = if pair % 2 == 0 {
            let o = measure(off);
            (o, measure(on))
        } else {
            let n = measure(on);
            (measure(off), n)
        };
        off_total += off_res.0;
        off_elapsed += off_res.1;
        on_total += on_res.0;
        on_elapsed += on_res.1;
        overheads.push((off_res.2 - on_res.2) / off_res.2.max(1e-9) * 100.0);
    }
    overheads.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let overhead_pct = overheads[overheads.len() / 2];
    (
        off_total as f64 / off_elapsed.as_secs_f64().max(1e-9),
        on_total as f64 / on_elapsed.as_secs_f64().max(1e-9),
        overhead_pct,
    )
}

struct CaptureResult {
    trace: ServingTrace,
    capture_qps: f64,
    events_retained: usize,
    registry_metrics: usize,
}

/// Serves `requests` through an observability-enabled runtime and records
/// every outcome. Query index and requested level are pure functions of the
/// sequence number, so the envelope is reproducible across runs even though
/// per-request latencies are not.
#[allow(clippy::too_many_arguments)]
fn capture(
    runtime: &Arc<ScoringRuntime>,
    metrics: &MetricsRegistry,
    features: &Arc<Vec<Vec<f64>>>,
    meta: TraceMeta,
    queries: Vec<TraceQuery>,
    requests: u64,
    threads: usize,
) -> CaptureResult {
    let budgets_ns = meta.deadline_budgets_ns;
    let recorder = Arc::new(TraceRecorder::new());
    let next_seq = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let runtime = Arc::clone(runtime);
            let features = Arc::clone(features);
            let recorder = Arc::clone(&recorder);
            let next_seq = Arc::clone(&next_seq);
            std::thread::spawn(move || loop {
                let seq = next_seq.fetch_add(1, Ordering::Relaxed);
                if seq >= requests {
                    break;
                }
                let query = (seq % features.len() as u64) as usize;
                let level_idx = (seq % ServiceLevel::COUNT as u64) as usize;
                let level = ServiceLevel::from_index(level_idx).unwrap();
                let arrival_ns = start.elapsed().as_nanos() as u64;
                let mut record = TraceRecord {
                    seq,
                    arrival_ns,
                    query: query as u32,
                    level: level_idx as u8,
                    tenant: 0,
                    status: RequestStatus::Errored,
                    executors: 0,
                    predicted_secs: 0.0,
                    price: 0.0,
                    observed_latency_ns: 0,
                    missed: false,
                    degraded: false,
                    demoted: false,
                };
                let request =
                    ScoreRequest::from_features(features[query].clone()).with_level(level);
                if let Ok(outcome) = runtime.submit(request) {
                    let executors = outcome.request.executors;
                    record.status = RequestStatus::Completed;
                    record.executors = executors as u32;
                    record.predicted_secs =
                        curve_at(&outcome.request.predicted_curve, executors).unwrap_or(0.0);
                    record.price = outcome.quote().map_or(0.0, |quote| quote.price);
                    record.observed_latency_ns = outcome.latency.as_nanos() as u64;
                    // Canonical miss flag: observed latency against the
                    // requested level's budget (what replay recomputes).
                    record.missed = record.observed_latency_ns > budgets_ns[level_idx];
                    record.degraded = outcome.degraded;
                    record.demoted = outcome.level != level;
                }
                recorder.record(record);
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let elapsed = start.elapsed();
    let records = recorder.finish();
    let capture_qps = records.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    let obs = runtime.observability().expect("capture runtime has obs");
    CaptureResult {
        trace: ServingTrace {
            meta,
            queries,
            records,
        },
        capture_qps,
        events_retained: obs.events().snapshot().len(),
        registry_metrics: metrics.snapshot().values().len(),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    args: &Args,
    trace: &ServingTrace,
    capture_qps: f64,
    events_retained: usize,
    registry_metrics: usize,
    trace_bytes: usize,
    gate_mismatches: &[String],
    baseline: &ReplayRun,
    reports: &[(String, String)],
    diffs: &[String],
    drift_json: &str,
    qps_off: f64,
    qps_on: f64,
    overhead_pct: f64,
) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"comment\": \"ae-obs observability benchmark: serving-trace capture/replay \
         determinism and metrics/tracing overhead. 'determinism_gate_mismatches' counts \
         bit-level disagreements between captured outcomes and a replay under the capture \
         configuration (must be 0). 'overhead_pct' is the closed-loop qps regression from \
         attaching the metrics registry + event sink to the scoring runtime, estimated as \
         the median over interleaved A/B slice pairs. Regenerate \
         with: cargo run --release -p ae-bench --bin bench_obs -- --json BENCH_obs.json\",\n",
    );
    out.push_str(&format!(
        "  \"host\": \"{}-core container (rustc 1.95, release profile)\",\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(&format!(
        "  \"capture\": {{\n    \"requests\": {},\n    \"queries\": {},\n    \
         \"client_threads\": {},\n    \"capture_qps\": {:.1},\n    \"trace_bytes\": {},\n    \
         \"events_retained\": {},\n    \"registry_metrics\": {}\n  }},\n",
        trace.records.len(),
        trace.queries.len(),
        args.threads,
        capture_qps,
        trace_bytes,
        events_retained,
        registry_metrics,
    ));
    out.push_str("  \"roundtrip_bit_identical\": true,\n");
    out.push_str(&format!(
        "  \"determinism_gate_mismatches\": {},\n",
        gate_mismatches.len()
    ));
    out.push_str(&format!(
        "  \"baseline_replay\": {},\n",
        baseline.report.to_json()
    ));
    out.push_str("  \"alternative_replays\": {\n");
    for (i, (name, report)) in reports.iter().enumerate() {
        out.push_str(&format!("    \"{name}\": {report}"));
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  },\n");
    out.push_str("  \"diffs_vs_baseline\": [\n");
    for (i, diff) in diffs.iter().enumerate() {
        out.push_str(&format!("    {diff}"));
        out.push_str(if i + 1 < diffs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"drift_signal\": {drift_json},\n"));
    out.push_str(&format!(
        "  \"overhead\": {{\n    \"qps_obs_off\": {qps_off:.1},\n    \
         \"qps_obs_on\": {qps_on:.1},\n    \"overhead_pct\": {overhead_pct:.2}\n  }}\n"
    ));
    out.push_str("}\n");
    let mut file = std::fs::File::create(path).expect("create json output");
    file.write_all(out.as_bytes()).expect("write json output");
    println!("wrote {path}");
}

fn main() {
    // The trace format carries exactly the serving tier's level count.
    const _: () = assert!(ServiceLevel::COUNT == TRACE_LEVELS);

    let args = parse_args();
    let duration = Duration::from_secs_f64(args.seconds);

    // --- Train on an SF10 TPC-DS subset (noise-free, deterministic). ---
    let full_suite =
        WorkloadGenerator::builtin(ae_workload::BuiltinFamily::Tpcds, ScaleFactor::SF10).suite();
    let suite: Vec<QueryInstance> = full_suite.into_iter().take(args.queries).collect();
    println!(
        "==> training the parameter model ({}-query SF10 tpcds subset)",
        suite.len()
    );
    let mut config = AutoExecutorConfig::default();
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&suite, &config).expect("training");
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("serving", model.to_portable("serving").unwrap())
        .unwrap();
    let decoded = ParameterModel::from_portable(&registry.load("serving").unwrap()).unwrap();
    let candidate_counts = config.candidate_counts();
    let objective = config.objective;

    let rewriter = Optimizer::with_default_rules();
    let features: Arc<Vec<Vec<f64>>> = Arc::new(
        suite
            .iter()
            .map(|q| {
                let optimized = rewriter.optimize(q.plan.clone()).unwrap().plan;
                autoexecutor::featurize_plan(&optimized)
            })
            .collect(),
    );

    // --- Ground-truth actual curves over the candidate counts. ---
    println!(
        "==> measuring ground-truth curves ({} queries x {} counts, deterministic)",
        suite.len(),
        candidate_counts.len()
    );
    let actuals = ActualRuns::collect(&suite, &candidate_counts, 1, &config.cluster, 0xAE_2023)
        .expect("ground-truth collection");
    let trace_queries: Vec<TraceQuery> = suite
        .iter()
        .zip(features.iter())
        .map(|(q, feats)| TraceQuery {
            name: q.name.clone(),
            features: feats.clone(),
            digest: feature_digest(feats),
            actual_curve: actuals
                .curve(&q.name)
                .expect("curve for every suite query")
                .iter()
                .map(|&(n, t)| (n as u32, t))
                .collect(),
        })
        .collect();

    // --- Capture: serve through an obs-enabled runtime, record a trace. ---
    let runtime_config = RuntimeConfig::from_auto_executor(&config);
    let qos: QosConfig = runtime_config.qos.clone();
    let meta = TraceMeta {
        family: "tpcds".to_string(),
        model: "serving".to_string(),
        objective: format!("{objective:?}"),
        seed: 0xAE_2023,
        candidate_counts: candidate_counts.iter().map(|&c| c as u32).collect(),
        deadline_budgets_ns: std::array::from_fn(|i| qos.deadline_budgets[i].as_nanos() as u64),
        slowdown_targets: qos.slowdown_targets,
        unit_price: qos.unit_price,
    };
    let metrics = Arc::new(MetricsRegistry::new());
    let capture_runtime = Arc::new(ScoringRuntime::new(
        Arc::clone(&registry),
        "serving",
        runtime_config.with_observability(ObsConfig::new(Arc::clone(&metrics))),
    ));
    capture_runtime.warm().expect("model warm-up");
    println!(
        "==> capturing {} requests at {} client threads (obs enabled)",
        args.requests, args.threads
    );
    let CaptureResult {
        trace,
        capture_qps,
        events_retained,
        registry_metrics,
    } = capture(
        &capture_runtime,
        &metrics,
        &features,
        meta,
        trace_queries,
        args.requests,
        args.threads,
    );
    let completed = trace
        .records
        .iter()
        .filter(|r| r.status == RequestStatus::Completed)
        .count();
    println!(
        "    {} records ({} completed) at {:.0} qps; {} events retained, {} registry metrics",
        trace.records.len(),
        completed,
        capture_qps,
        events_retained,
        registry_metrics,
    );
    assert!(completed > 0, "capture must complete requests");

    // --- Roundtrip: parse(render(t)) == t and render(parse(s)) == s. ---
    let text = trace.render();
    let parsed = ServingTrace::parse(&text).expect("trace parses");
    assert_eq!(parsed, trace, "parse(render(t)) must equal t");
    assert_eq!(parsed.render(), text, "render(parse(s)) must equal s");
    println!(
        "==> trace roundtrip bit-identical ({} bytes rendered)",
        text.len()
    );

    // --- Determinism gate: replay under the capture configuration. ---
    let baseline_policy = ReplayPolicy::baseline(&trace);
    let baseline = replay(
        &trace,
        &baseline_policy,
        capture_config_scorer(&trace, &decoded, objective, &candidate_counts),
    );
    let gate = baseline.verify_against_capture(&trace);
    if !gate.is_empty() {
        for mismatch in gate.iter().take(10) {
            eprintln!("gate mismatch: {mismatch}");
        }
        eprintln!(
            "determinism gate FAILED: {} mismatches over {} records",
            gate.len(),
            trace.records.len()
        );
        std::process::exit(1);
    }
    println!(
        "==> determinism gate OK: replay reproduced all {} captured outcomes bit-identically",
        trace.records.len()
    );

    // --- Alternative configurations, replayed without re-simulation. ---
    // The default budgets are milliseconds against microsecond scoring
    // latencies, so halving them reclassifies nothing. To exercise the
    // SLO side of the diff, tighten every budget to the capture's median
    // observed latency: roughly half the completions become misses.
    let mut latencies: Vec<u64> = trace
        .records
        .iter()
        .filter(|r| r.status == RequestStatus::Completed)
        .map(|r| r.observed_latency_ns)
        .collect();
    latencies.sort_unstable();
    let median_latency_ns = latencies[latencies.len() / 2].max(1);
    let strict_policy = ReplayPolicy::baseline(&trace)
        .with_label("strict_budgets")
        .with_budgets_ns([median_latency_ns; TRACE_LEVELS]);
    let strict = replay(
        &trace,
        &strict_policy,
        capture_config_scorer(&trace, &decoded, objective, &candidate_counts),
    );
    let min_time = replay(
        &trace,
        &ReplayPolicy::baseline(&trace).with_label("min_time_objective"),
        capture_config_scorer(
            &trace,
            &decoded,
            SelectionObjective::MinTime,
            &candidate_counts,
        ),
    );
    let diff_strict = ReplayDiff::between(&baseline.report, &strict.report);
    let diff_min_time = ReplayDiff::between(&baseline.report, &min_time.report);
    println!(
        "    strict_budgets: {:+} misses, net revenue {:+.1}",
        diff_strict.misses_delta, diff_strict.net_revenue_delta
    );
    println!(
        "    min_time_objective: mean executors {:+.2}, mean |residual| {:+.4}",
        diff_min_time.mean_executors_delta, diff_min_time.mean_abs_residual_delta
    );

    // --- Drift signal from the baseline replay's residuals. ---
    let drift = ResidualMonitor::new(0.25);
    for outcome in &baseline.outcomes {
        if outcome.status == RequestStatus::Completed && outcome.actual_secs > 0.0 {
            drift.observe(outcome.predicted_secs, outcome.actual_secs);
        }
    }
    let drift_signal = drift.signal();
    println!(
        "==> drift signal: {} samples, mean |rel| {:.4}, drifted(0.25) = {}",
        drift_signal.samples,
        drift_signal.mean_abs_rel,
        drift.drifted()
    );

    // --- Overhead A/B: closed-loop qps without vs with observability. ---
    println!(
        "==> overhead A/B ({:.1}s per side at {} client threads)",
        args.seconds, args.threads
    );
    let plain_runtime = Arc::new(ScoringRuntime::new(
        Arc::clone(&registry),
        "serving",
        RuntimeConfig::from_auto_executor(&config),
    ));
    plain_runtime.warm().expect("model warm-up");
    let obs_runtime = Arc::new(ScoringRuntime::new(
        Arc::clone(&registry),
        "serving",
        RuntimeConfig::from_auto_executor(&config)
            .with_observability(ObsConfig::new(Arc::new(MetricsRegistry::new()))),
    ));
    obs_runtime.warm().expect("model warm-up");
    let (qps_off, qps_on, overhead_pct) = interleaved_ab_qps(
        &plain_runtime,
        &obs_runtime,
        &features,
        args.threads,
        duration,
    );
    println!(
        "    obs off: {qps_off:.0} qps   obs on: {qps_on:.0} qps   overhead (median of slice pairs): {overhead_pct:+.2}%"
    );

    if let Some(path) = &args.json {
        write_json(
            path,
            &args,
            &trace,
            capture_qps,
            events_retained,
            registry_metrics,
            text.len(),
            &gate,
            &baseline,
            &[
                ("strict_budgets".to_string(), strict.report.to_json()),
                ("min_time_objective".to_string(), min_time.report.to_json()),
            ],
            &[diff_strict.to_json(), diff_min_time.to_json()],
            &drift_signal.to_json(),
            qps_off,
            qps_on,
            overhead_pct,
        );
    }

    if args.smoke {
        let mut failures = Vec::new();
        // Gate already hard-exits above; re-assert for clarity.
        if !gate.is_empty() {
            failures.push(format!("{} determinism mismatches", gate.len()));
        }
        if diff_strict.misses_delta < 0 {
            failures.push("halving budgets cannot reduce misses".to_string());
        }
        if drift_signal.samples == 0 {
            failures.push("drift monitor saw no residual samples".to_string());
        }
        if overhead_pct > SMOKE_OVERHEAD_BOUND_PCT {
            failures.push(format!(
                "obs overhead {overhead_pct:.2}% exceeds {SMOKE_OVERHEAD_BOUND_PCT}% bound"
            ));
        }
        if !failures.is_empty() {
            eprintln!("obs smoke FAILED: {}", failures.join("; "));
            std::process::exit(1);
        }
        println!(
            "obs smoke OK (roundtrip bit-identical, gate clean, overhead {overhead_pct:.2}% < {SMOKE_OVERHEAD_BOUND_PCT}%)"
        );
    }
}
