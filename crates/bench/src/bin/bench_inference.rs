//! Forest-inference benchmark: the compiled representation
//! (`ae_ml::compiled::CompiledForest` — flat SoA tree arenas, pooled leaf
//! table, batch-major kernel) against the interpreted
//! `RandomForestRegressor` walk it replaced on every scoring path.
//!
//! Three measurements, plus a bit-equality check that always runs:
//!
//! * **single-row latency** — one `predict_into` call per measured op, the
//!   shape of the sequential `AutoExecutorRule` and the serving inline
//!   fast path;
//! * **batched throughput** — rows/second over a tiled batch matrix:
//!   `predict_matrix` (the pre-PR `Vec<Vec<f64>>` serving walk, the
//!   baseline the speedup is quoted against), `predict_matrix_into` (the
//!   interpreted flat-output variant), and the compiled
//!   `predict_batch_into` kernel;
//! * **end-to-end serving qps** — a short closed-loop run through the
//!   `ae-serve` runtime (which now scores on the compiled kernel).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ae-bench --bin bench_inference                 # full run
//! cargo run --release -p ae-bench --bin bench_inference -- --smoke     # CI gate
//! cargo run --release -p ae-bench --bin bench_inference -- --json BENCH_inference.json
//! ```
//!
//! `--smoke` shortens every phase and exits non-zero unless (a) compiled
//! predictions are bit-identical to the interpreter over the whole batch
//! and (b) compiled batched throughput is at least the interpreted
//! baseline's.

use std::hint::black_box;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ae_ml::matrix::FeatureMatrix;
use ae_serve::{RuntimeConfig, ScoringRuntime};
use ae_workload::{ClosedLoop, ScaleFactor, WorkloadGenerator};
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

struct Args {
    smoke: bool,
    batch_rows: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        batch_rows: 4096,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--batch-rows" => {
                args.batch_rows = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--batch-rows needs a number");
            }
            "--json" => args.json = it.next(),
            other => panic!("unknown argument: {other}"),
        }
    }
    if args.smoke {
        args.batch_rows = args.batch_rows.min(1024);
    }
    args
}

/// Runs `op` repeatedly for at least `budget`, returning (ops, elapsed).
fn measure(budget: Duration, mut op: impl FnMut()) -> (u64, Duration) {
    // Warm-up pass so neither side pays first-touch costs inside the window.
    op();
    let start = Instant::now();
    let mut ops = 0u64;
    loop {
        op();
        ops += 1;
        if start.elapsed() >= budget {
            return (ops, start.elapsed());
        }
    }
}

fn per_op_ns(ops: u64, elapsed: Duration) -> f64 {
    elapsed.as_secs_f64() * 1e9 / ops.max(1) as f64
}

fn main() {
    let args = parse_args();
    let op_budget = if args.smoke {
        Duration::from_millis(120)
    } else {
        Duration::from_millis(800)
    };

    let suite = WorkloadGenerator::new(ScaleFactor::SF10).suite();
    println!(
        "==> training the parameter model ({}-query SF10 tpcds suite)",
        suite.len()
    );
    let mut config = AutoExecutorConfig::default();
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&suite, &config).expect("training");
    let forest = model.forest();
    let compiled = model.compiled();
    let k = compiled.num_outputs();
    println!(
        "    forest: {} trees, {} nodes, {} pooled leaves, {} outputs",
        compiled.num_trees(),
        compiled.num_nodes(),
        compiled.num_leaves(),
        k
    );

    // Projected feature rows for every suite query, tiled to the batch size.
    let rows: Vec<Vec<f64>> = suite
        .iter()
        .map(|q| {
            model
                .feature_set()
                .project(&autoexecutor::featurize_plan(&q.plan))
        })
        .collect();
    let mut matrix = FeatureMatrix::with_capacity(compiled.num_features(), args.batch_rows);
    for i in 0..args.batch_rows {
        matrix.push_row(&rows[i % rows.len()]).expect("batch row");
    }

    // --- Bit-equality gate (always on): compiled ≡ interpreted. ---
    let mut compiled_flat = vec![0.0; matrix.len() * k];
    compiled
        .predict_batch_into(&matrix, &mut compiled_flat)
        .expect("compiled batch");
    let mut interpreted_flat = Vec::new();
    forest
        .predict_matrix_into(&matrix, &mut interpreted_flat)
        .expect("interpreted batch");
    let equal_bits = compiled_flat
        .iter()
        .zip(&interpreted_flat)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "==> equivalence: compiled output {} interpreted over {} rows x {k} outputs",
        if equal_bits {
            "bit-identical to"
        } else {
            "DIVERGED from"
        },
        matrix.len()
    );

    // --- Single-row latency. ---
    let mut out = vec![0.0; k];
    let mut cursor = 0usize;
    let (ops, elapsed) = measure(op_budget, || {
        let row = &rows[cursor % rows.len()];
        cursor += 1;
        forest.predict_into(black_box(row), &mut out).unwrap();
        black_box(&out);
    });
    let interp_row_ns = per_op_ns(ops, elapsed);
    cursor = 0;
    let (ops, elapsed) = measure(op_budget, || {
        let row = &rows[cursor % rows.len()];
        cursor += 1;
        compiled.predict_into(black_box(row), &mut out).unwrap();
        black_box(&out);
    });
    let compiled_row_ns = per_op_ns(ops, elapsed);
    println!(
        "==> single-row latency: interpreted {interp_row_ns:>8.0} ns   compiled {compiled_row_ns:>8.0} ns   ({:.2}x)",
        interp_row_ns / compiled_row_ns.max(1e-9)
    );

    // --- Batched throughput (rows/second over the tiled matrix). ---
    let rows_per_batch = matrix.len() as f64;
    let (ops, elapsed) = measure(op_budget, || {
        black_box(forest.predict_matrix(black_box(&matrix)).unwrap());
    });
    let interp_vecvec_rps = rows_per_batch * ops as f64 / elapsed.as_secs_f64();
    let (ops, elapsed) = measure(op_budget, || {
        forest
            .predict_matrix_into(black_box(&matrix), &mut interpreted_flat)
            .unwrap();
        black_box(&interpreted_flat);
    });
    let interp_flat_rps = rows_per_batch * ops as f64 / elapsed.as_secs_f64();
    let (ops, elapsed) = measure(op_budget, || {
        compiled
            .predict_batch_into(black_box(&matrix), &mut compiled_flat)
            .unwrap();
        black_box(&compiled_flat);
    });
    let compiled_rps = rows_per_batch * ops as f64 / elapsed.as_secs_f64();
    let batch_speedup = compiled_rps / interp_vecvec_rps.max(1e-9);
    println!("==> batched throughput ({} rows/batch):", matrix.len());
    println!("    interpreted predict_matrix      {interp_vecvec_rps:>12.0} rows/s   (pre-PR serving walk — baseline)");
    println!("    interpreted predict_matrix_into {interp_flat_rps:>12.0} rows/s   (flat output, no per-row alloc)");
    println!(
        "    compiled predict_batch_into     {compiled_rps:>12.0} rows/s   ({batch_speedup:.2}x vs baseline)"
    );

    // --- End-to-end serving qps (closed loop through ae-serve). ---
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("inference", model.to_portable("inference").unwrap())
        .unwrap();
    let runtime = Arc::new(ScoringRuntime::new(
        Arc::clone(&registry),
        "inference",
        RuntimeConfig::from_auto_executor(&config),
    ));
    runtime.warm().expect("model warm-up");
    let rewriter = Optimizer::with_default_rules();
    let plans: Arc<Vec<ae_engine::QueryPlan>> = Arc::new(
        suite
            .iter()
            .map(|q| rewriter.optimize(q.plan.clone()).unwrap().plan)
            .collect(),
    );
    let threads = 4;
    let serve_duration = if args.smoke {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(2)
    };
    let sequences = ClosedLoop::new(threads, 512, 1).sequences(plans.len());
    let serve_start = Instant::now();
    let served: u64 = std::thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let runtime = Arc::clone(&runtime);
                let plans = Arc::clone(&plans);
                let sequence = sequences[t % sequences.len()].clone();
                scope.spawn(move || {
                    let mut count = 0u64;
                    let mut i = 0usize;
                    while serve_start.elapsed() < serve_duration {
                        runtime
                            .score(&plans[sequence[i % sequence.len()]])
                            .expect("serving score");
                        count += 1;
                        i += 1;
                    }
                    count
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    let serve_elapsed = serve_start.elapsed();
    let serving_qps = served as f64 / serve_elapsed.as_secs_f64();
    let stats = runtime.stats();
    println!(
        "==> serving (compiled kernel, closed loop, {threads} threads): {serving_qps:.0} qps ({served} requests, {} inline / {} batched, errors {})",
        stats.inline_scored,
        stats.batched(),
        stats.errors
    );

    if let Some(path) = &args.json {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(
            "  \"comment\": \"Compiled-forest inference benchmark: CompiledForest (flat SoA tree \
             arenas, pooled leaf table, batch-major kernel) vs the interpreted \
             RandomForestRegressor walk every scoring path used before. 'interpreted \
             predict_matrix' is the pre-compilation batched serving walk and is the baseline the \
             speedup is quoted against; equivalence_bit_identical asserts compiled == interpreted \
             bit-for-bit over the whole batch. Regenerate with: cargo run --release -p ae-bench \
             --bin bench_inference -- --json BENCH_inference.json\",\n",
        );
        out.push_str(&format!(
            "  \"host\": \"{}-core container (release profile)\",\n",
            std::thread::available_parallelism().map_or(1, |n| n.get())
        ));
        out.push_str(&format!(
            "  \"forest\": {{ \"trees\": {}, \"nodes\": {}, \"pooled_leaves\": {}, \"outputs\": {k} }},\n",
            compiled.num_trees(),
            compiled.num_nodes(),
            compiled.num_leaves()
        ));
        out.push_str(&format!("  \"equivalence_bit_identical\": {equal_bits},\n"));
        out.push_str(&format!(
            "  \"single_row\": {{ \"interpreted_ns\": {interp_row_ns:.0}, \"compiled_ns\": {compiled_row_ns:.0}, \"speedup\": {:.2} }},\n",
            interp_row_ns / compiled_row_ns.max(1e-9)
        ));
        out.push_str(&format!(
            "  \"batched\": {{ \"rows_per_batch\": {}, \"interpreted_rows_per_s\": {interp_vecvec_rps:.0}, \"interpreted_flat_rows_per_s\": {interp_flat_rps:.0}, \"compiled_rows_per_s\": {compiled_rps:.0}, \"speedup_vs_interpreted\": {batch_speedup:.2} }},\n",
            matrix.len()
        ));
        out.push_str(&format!(
            "  \"serving\": {{ \"closed_loop_qps\": {serving_qps:.0}, \"client_threads\": {threads}, \"requests\": {served} }}\n"
        ));
        out.push_str("}\n");
        let mut file = std::fs::File::create(path).expect("create json output");
        file.write_all(out.as_bytes()).expect("write json output");
        println!("wrote {path}");
    }

    if args.smoke {
        let mut failures = Vec::new();
        if !equal_bits {
            failures.push("compiled output is not bit-identical to the interpreter".to_string());
        }
        if compiled_rps < interp_vecvec_rps {
            failures.push(format!(
                "compiled batched throughput ({compiled_rps:.0} rows/s) below the interpreted \
                 baseline ({interp_vecvec_rps:.0} rows/s)"
            ));
        }
        if stats.errors != 0 {
            failures.push(format!("{} serving errors", stats.errors));
        }
        if !failures.is_empty() {
            eprintln!("inference smoke FAILED: {}", failures.join("; "));
            std::process::exit(1);
        }
        println!(
            "inference smoke OK (bit-identical, compiled {batch_speedup:.2}x interpreted, zero serving errors)"
        );
    }
}
