//! Fleet benchmark: aggregate throughput, per-shard p99 skew, and
//! work-steal accounting of the `ae-serve` sharded runtime at 1/2/4/8
//! shards under tagged open-loop traffic.
//!
//! **Measurement model (shard = node).** A fleet shard maps 1:1 onto an
//! independent node: shards share no queues, no model cache, and no
//! stats, so a real deployment runs them on disjoint cores or machines.
//! This container is 1-core, so running all shards live would only
//! interleave them on the same core and measure the scheduler, not the
//! architecture. Instead the throughput phase routes the tagged request
//! stream through the fleet's ring into per-shard substreams and drives
//! each shard's substream to completion *sequentially* on its own
//! runtime, timing each shard separately; the aggregate is
//!
//! ```text
//! aggregate_qps = total_requests / max(per-shard elapsed)
//! ```
//!
//! — the fleet finishes when its slowest node finishes. Per-shard p99
//! skew (`max p99 / min p99`) comes from the same per-shard runs. The
//! work-steal drill is the one *live* concurrent phase: it floods a
//! single shard's tenants with detached submissions while the steal
//! coordinator runs, and reports how much backlog migrated.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ae-bench --bin bench_fleet               # full run
//! cargo run --release -p ae-bench --bin bench_fleet -- --smoke    # CI gate
//! cargo run --release -p ae-bench --bin bench_fleet -- --json BENCH_fleet.json
//! cargo run --release -p ae-bench --bin bench_fleet -- --shards 1,2,4,8
//! ```
//!
//! `--smoke` shortens the run and exits non-zero unless the 4-shard
//! aggregate qps is at least 2x the single-shard qps, every per-shard p99
//! skew is finite, and no requests were dropped or errored.

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ae_obs::{Ladder, LatencyStats, ShardedHistogram};
use ae_serve::{
    FleetConfig, RuntimeConfig, ScoreRequest, ServiceLevel, ShardedRuntime, StealPolicy, TenantId,
};
use ae_workload::{FamilyRegistry, QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

struct Args {
    smoke: bool,
    shards: Vec<usize>,
    requests: usize,
    tenants: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        shards: vec![1, 2, 4, 8],
        requests: 20_000,
        tenants: 256,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--shards" => {
                let list = it.next().expect("--shards needs a comma-separated list");
                args.shards = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--shards needs numbers"))
                    .collect();
            }
            "--requests" => {
                args.requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a number");
            }
            "--tenants" => {
                args.tenants = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tenants needs a number");
            }
            "--json" => args.json = it.next(),
            other => panic!("unknown argument: {other}"),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(2_000);
    }
    args
}

/// Per-shard measurement of one fleet size.
struct ShardRun {
    requests: u64,
    elapsed: Duration,
    latency: LatencyStats,
}

/// One fleet size's result.
struct FleetRun {
    shards: usize,
    per_shard: Vec<ShardRun>,
    dropped: u64,
    errors: u64,
}

impl FleetRun {
    fn total_requests(&self) -> u64 {
        self.per_shard.iter().map(|s| s.requests).sum()
    }

    /// The fleet finishes when its slowest node finishes.
    fn makespan(&self) -> Duration {
        self.per_shard
            .iter()
            .map(|s| s.elapsed)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    fn aggregate_qps(&self) -> f64 {
        self.total_requests() as f64 / self.makespan().as_secs_f64().max(1e-9)
    }

    /// `max p99 / min p99` over shards that served traffic (1.0 for a
    /// single shard).
    fn p99_skew(&self) -> f64 {
        let p99s: Vec<f64> = self
            .per_shard
            .iter()
            .filter(|s| s.requests > 0)
            .map(|s| s.latency.p99.as_secs_f64())
            .collect();
        let max = p99s.iter().cloned().fold(0.0, f64::max);
        let min = p99s.iter().cloned().fold(f64::INFINITY, f64::min);
        if !min.is_finite() {
            return 1.0;
        }
        max / min.max(1e-9)
    }
}

/// Routes the tagged stream through the fleet's ring and drives each
/// shard's substream to completion sequentially (see the module docs for
/// why this is the honest 1-core measurement).
fn run_fleet(
    registry: &Arc<ModelRegistry>,
    config: &AutoExecutorConfig,
    shards: usize,
    stream: &[(TenantId, usize)],
    features: &[Vec<f64>],
) -> FleetRun {
    let fleet = ShardedRuntime::new(
        Arc::clone(registry),
        "fleet",
        FleetConfig::new(shards, RuntimeConfig::from_auto_executor(config)).without_steal(),
    );
    fleet.warm().expect("model warm-up");

    let mut substreams: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for &(tenant, plan) in stream {
        substreams[fleet.shard_for_tenant(tenant)].push(plan);
    }

    let mut per_shard = Vec::with_capacity(shards);
    for (shard, substream) in substreams.iter().enumerate() {
        let histogram = ShardedHistogram::new(Ladder::latency());
        let start = Instant::now();
        for &plan in substream {
            let begin = Instant::now();
            fleet
                .shard(shard)
                .submit(ScoreRequest::from_features(features[plan].clone()))
                .expect("fleet scoring");
            histogram.record_duration(begin.elapsed());
        }
        per_shard.push(ShardRun {
            requests: substream.len() as u64,
            elapsed: start.elapsed(),
            latency: histogram.snapshot().latency_stats(),
        });
    }
    let aggregate = fleet.stats().aggregate();
    let run = FleetRun {
        shards,
        per_shard,
        dropped: aggregate.dropped,
        errors: aggregate.errors,
    };
    fleet.shutdown();
    run
}

/// Live steal drill: floods one shard's tenants with detached
/// submissions while the coordinator runs, and reports the migration.
struct StealDrill {
    requests: u64,
    steal_ops: u64,
    stolen_requests: u64,
    foreign_completed: u64,
}

fn run_steal_drill(
    registry: &Arc<ModelRegistry>,
    config: &AutoExecutorConfig,
    features: &[Vec<f64>],
    requests: usize,
) -> StealDrill {
    const SHARDS: usize = 4;
    let fleet = ShardedRuntime::new(
        Arc::clone(registry),
        "fleet",
        FleetConfig::new(
            SHARDS,
            RuntimeConfig::from_auto_executor(config)
                .with_workers(1)
                .with_max_batch(4)
                .with_batch_window(Duration::ZERO)
                .with_inline_when_idle(false)
                .with_queue_capacity(requests.max(1024)),
        )
        .with_steal(StealPolicy {
            imbalance_ratio: 1.5,
            min_backlog: 16,
            max_steal: 32,
            interval: Duration::from_micros(50),
        }),
    );
    fleet.warm().expect("model warm-up");
    let victim = fleet.shard_for_tenant(TenantId(0));
    let tenants: Vec<TenantId> = (0..100_000u64)
        .map(TenantId)
        .filter(|&t| fleet.shard_for_tenant(t) == victim)
        .take(8)
        .collect();
    let mut tickets = Vec::with_capacity(requests);
    for i in 0..requests {
        tickets.push(
            fleet
                .submit_detached(
                    ScoreRequest::from_features(features[i % features.len()].clone())
                        .with_tenant(tenants[i % tenants.len()])
                        .with_level(ServiceLevel::Standard)
                        .with_deadline_budget(Duration::from_secs(60)),
                )
                .expect("steal-drill admission"),
        );
    }
    for ticket in tickets {
        ticket.wait().expect("steal-drill scoring");
    }
    let stats = fleet.stats();
    let foreign_completed = (0..SHARDS)
        .filter(|&s| s != victim)
        .map(|s| stats.shard(s).completed)
        .sum();
    fleet.shutdown();
    StealDrill {
        requests: requests as u64,
        steal_ops: stats.steal_ops,
        stolen_requests: stats.stolen_requests,
        foreign_completed,
    }
}

fn write_json(path: &str, tenants: usize, runs: &[FleetRun], drill: &StealDrill, base_qps: f64) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"comment\": \"ae-serve fleet benchmark (shard = node model). Shards share no state, \
         so each fleet size routes one tagged request stream through the consistent-hash ring and \
         drives every shard's substream to completion sequentially on its own runtime; \
         aggregate_qps = total_requests / max(per-shard elapsed) — the fleet finishes when its \
         slowest node finishes. Running shards live-concurrently on this 1-core host would \
         measure the kernel scheduler, not the architecture. The steal drill is live and \
         concurrent: it floods one shard's tenants and reports how much Standard backlog the \
         coordinator migrated. Regenerate with: cargo run --release -p ae-bench --bin \
         bench_fleet -- --json BENCH_fleet.json\",\n",
    );
    out.push_str(&format!(
        "  \"host\": \"{}-core container (rustc 1.95, release profile)\",\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(&format!("  \"tenants\": {tenants},\n"));
    out.push_str("  \"fleet_sizes\": [\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"shards\": {},\n", run.shards));
        out.push_str(&format!("      \"requests\": {},\n", run.total_requests()));
        out.push_str(&format!(
            "      \"aggregate_qps\": {:.1},\n",
            run.aggregate_qps()
        ));
        out.push_str(&format!(
            "      \"speedup_vs_1_shard\": {:.2},\n",
            run.aggregate_qps() / base_qps.max(1e-9)
        ));
        out.push_str(&format!("      \"p99_skew\": {:.2},\n", run.p99_skew()));
        out.push_str("      \"per_shard\": [\n");
        for (s, shard) in run.per_shard.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"shard\": {s}, \"requests\": {}, \"elapsed_ms\": {:.1}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}}}{}\n",
                shard.requests,
                shard.elapsed.as_secs_f64() * 1e3,
                shard.latency.p50.as_secs_f64() * 1e6,
                shard.latency.p99.as_secs_f64() * 1e6,
                if s + 1 < run.per_shard.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n    }");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"steal_drill\": {\n");
    out.push_str(&format!(
        "    \"requests\": {},\n    \"steal_ops\": {},\n    \"stolen_requests\": {},\n    \
         \"completed_off_victim\": {}\n",
        drill.requests, drill.steal_ops, drill.stolen_requests, drill.foreign_completed,
    ));
    out.push_str("  }\n}\n");
    let mut file = std::fs::File::create(path).expect("create json output");
    file.write_all(out.as_bytes()).expect("write json output");
    println!("wrote {path}");
}

fn main() {
    let args = parse_args();

    let registry_families = FamilyRegistry::builtin();
    let family = registry_families.get("tpcds").expect("builtin tpcds");
    let suite: Vec<QueryInstance> =
        WorkloadGenerator::for_family(family, ScaleFactor::SF10).suite();
    println!(
        "==> training the parameter model ({}-query SF10 tpcds suite)",
        suite.len()
    );
    let mut config = AutoExecutorConfig::default();
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&suite, &config).expect("training");
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("fleet", model.to_portable("fleet").unwrap())
        .unwrap();

    let rewriter = Optimizer::with_default_rules();
    let features: Vec<Vec<f64>> = suite
        .iter()
        .map(|q| {
            let optimized = rewriter.optimize(q.plan.clone()).unwrap().plan;
            autoexecutor::featurize_plan(&optimized)
        })
        .collect();

    // Tagged open-loop stream: request i belongs to tenant i mod tenants
    // and scores plan i mod |suite| — every shard count replays the exact
    // same stream, only the routing changes.
    let stream: Vec<(TenantId, usize)> = (0..args.requests)
        .map(|i| (TenantId((i % args.tenants) as u64), i % features.len()))
        .collect();

    let mut runs = Vec::new();
    for &shards in &args.shards {
        let run = run_fleet(&registry, &config, shards, &stream, &features);
        println!(
            "fleet: {:>2} shards   {:>9.0} aggregate qps   makespan {:>7.1} ms   p99 skew {:>5.2}   ({} requests)",
            run.shards,
            run.aggregate_qps(),
            run.makespan().as_secs_f64() * 1e3,
            run.p99_skew(),
            run.total_requests(),
        );
        runs.push(run);
    }

    let drill_requests = if args.smoke { 1_500 } else { 6_000 };
    let drill = run_steal_drill(&registry, &config, &features, drill_requests);
    println!(
        "steal drill: {} requests flooded one shard — {} steal ops migrated {} requests, {} completed off the victim",
        drill.requests, drill.steal_ops, drill.stolen_requests, drill.foreign_completed,
    );

    let base_qps = runs
        .iter()
        .find(|r| r.shards == 1)
        .map(|r| r.aggregate_qps())
        .unwrap_or_else(|| runs[0].aggregate_qps());
    for run in &runs {
        println!(
            "==> {} shards: {:.2}x single-shard aggregate qps",
            run.shards,
            run.aggregate_qps() / base_qps.max(1e-9)
        );
    }

    if let Some(path) = &args.json {
        write_json(path, args.tenants, &runs, &drill, base_qps);
    }

    if args.smoke {
        let mut failures = Vec::new();
        match runs.iter().find(|r| r.shards == 4) {
            Some(four) => {
                let speedup = four.aggregate_qps() / base_qps.max(1e-9);
                if speedup < 2.0 {
                    failures.push(format!(
                        "4-shard aggregate qps must be >= 2x single-shard (got {speedup:.2}x)"
                    ));
                }
            }
            None => failures.push("smoke needs a 4-shard run (--shards must include 4)".into()),
        }
        for run in &runs {
            if !run.p99_skew().is_finite() {
                failures.push(format!("{}-shard p99 skew is not finite", run.shards));
            }
            if run.dropped != 0 || run.errors != 0 {
                failures.push(format!(
                    "{}-shard run dropped {} / errored {}",
                    run.shards, run.dropped, run.errors
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("fleet smoke FAILED: {}", failures.join("; "));
            std::process::exit(1);
        }
        println!("fleet smoke OK (4-shard >= 2x single-shard, finite skew, zero dropped/errors)");
    }
}
