//! # ae-bench — benchmark and experiment harness
//!
//! Two entry points:
//!
//! * the `experiments` binary regenerates every table and figure of the
//!   paper's evaluation section (`cargo run -p ae-bench --release --bin
//!   experiments -- all`), printing the same rows/series the paper reports;
//! * the criterion benches (`cargo bench -p ae-bench`) measure the
//!   Section 5.6 overheads: parameter-model training, scoring, plan
//!   featurization, simulation, and configuration selection.
//!
//! [`context::ExperimentContext`] caches the expensive shared inputs
//! (training data, ground-truth runs) so `all` does not recompute them per
//! experiment.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod context;
pub mod experiments;
pub mod table;
