//! Shared, lazily-computed inputs for the experiment harness.
//!
//! Several figures consume the same expensive artifacts: the 103-query
//! suites at SF=10 and SF=100, training data collected from single runs at
//! n=16 plus Sparklens augmentation, and ground-truth ("Actual") run-time
//! curves measured at the evaluation executor counts. The context computes
//! each of these at most once per process.

use ae_workload::{QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::evaluation::ActualRuns;
use autoexecutor::{AutoExecutorConfig, TrainingData};

/// Number of repeated runs used when measuring ground-truth curves.
pub const ACTUAL_RUN_REPEATS: usize = 3;

/// Lazily-built shared state for all experiments.
pub struct ExperimentContext {
    /// Pipeline configuration shared by the experiments (paper defaults).
    pub config: AutoExecutorConfig,
    suite_sf10: Option<Vec<QueryInstance>>,
    suite_sf100: Option<Vec<QueryInstance>>,
    training_sf10: Option<TrainingData>,
    training_sf100: Option<TrainingData>,
    actuals_sf10: Option<ActualRuns>,
    actuals_sf100: Option<ActualRuns>,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self::new()
    }
}

impl ExperimentContext {
    /// Creates an empty context with the paper-default configuration.
    pub fn new() -> Self {
        Self {
            config: AutoExecutorConfig::default(),
            suite_sf10: None,
            suite_sf100: None,
            training_sf10: None,
            training_sf100: None,
            actuals_sf10: None,
            actuals_sf100: None,
        }
    }

    /// The full 103-query suite at the given scale factor (cached).
    pub fn suite(&mut self, sf: ScaleFactor) -> &[QueryInstance] {
        let slot = if sf == ScaleFactor::SF10 {
            &mut self.suite_sf10
        } else {
            &mut self.suite_sf100
        };
        slot.get_or_insert_with(|| {
            eprintln!("[context] generating {sf} suite ...");
            WorkloadGenerator::new(sf).suite()
        })
    }

    /// Training data (single n=16 run + Sparklens augmentation + PPM labels)
    /// for the given scale factor (cached).
    pub fn training_data(&mut self, sf: ScaleFactor) -> TrainingData {
        if self.training_for(sf).is_none() {
            let config = self.config;
            let suite = self.suite(sf).to_vec();
            eprintln!(
                "[context] collecting training data at {sf} ({} queries) ...",
                suite.len()
            );
            let data = TrainingData::collect(&suite, &config).expect("training-data collection");
            *self.training_for(sf) = Some(data);
        }
        self.training_for(sf).clone().expect("just inserted")
    }

    fn training_for(&mut self, sf: ScaleFactor) -> &mut Option<TrainingData> {
        if sf == ScaleFactor::SF10 {
            &mut self.training_sf10
        } else {
            &mut self.training_sf100
        }
    }

    /// Ground-truth run-time curves at the training counts for the given
    /// scale factor (cached). Uses [`ACTUAL_RUN_REPEATS`] repeats with
    /// outlier-filtered means, as in Section 5.1.
    pub fn actuals(&mut self, sf: ScaleFactor) -> ActualRuns {
        if self.actuals_for(sf).is_none() {
            let config = self.config;
            let counts = config.training_counts;
            let suite = self.suite(sf).to_vec();
            eprintln!(
                "[context] measuring ground truth at {sf} ({} queries x {} counts x {} repeats) ...",
                suite.len(),
                counts.len(),
                ACTUAL_RUN_REPEATS
            );
            let actuals = ActualRuns::collect(
                &suite,
                &counts,
                ACTUAL_RUN_REPEATS,
                &config.cluster,
                0xAE_2023,
            )
            .expect("ground-truth collection");
            *self.actuals_for(sf) = Some(actuals);
        }
        self.actuals_for(sf).clone().expect("just inserted")
    }

    fn actuals_for(&mut self, sf: ScaleFactor) -> &mut Option<ActualRuns> {
        if sf == ScaleFactor::SF10 {
            &mut self.actuals_sf10
        } else {
            &mut self.actuals_sf100
        }
    }

    /// One query instance by name at a scale factor (no caching needed).
    pub fn query(&self, name: &str, sf: ScaleFactor) -> QueryInstance {
        WorkloadGenerator::new(sf).instance(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_cached_and_complete() {
        let mut ctx = ExperimentContext::new();
        let len_first = ctx.suite(ScaleFactor::SF10).len();
        let len_second = ctx.suite(ScaleFactor::SF10).len();
        assert_eq!(len_first, 103);
        assert_eq!(len_second, 103);
    }

    #[test]
    fn query_lookup_matches_suite_entry() {
        let ctx = ExperimentContext::new();
        let q = ctx.query("q94", ScaleFactor::SF10);
        assert_eq!(q.name, "q94");
        assert_eq!(q.scale_factor, ScaleFactor::SF10);
    }
}
