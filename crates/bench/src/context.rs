//! Shared, lazily-computed inputs for the experiment harness.
//!
//! Several figures consume the same expensive artifacts: the per-family
//! query suites at SF=10 and SF=100, training data collected from single
//! runs at n=16 plus Sparklens augmentation, and ground-truth ("Actual")
//! run-time curves measured at the evaluation executor counts. The context
//! computes each of these at most once per `(family, scale factor)` pair
//! per process.
//!
//! The paper's figures use the TPC-DS-like family; the no-argument
//! accessors default to `config.workload_family` so those experiments read
//! unchanged, while the cross-family generalization experiment asks for
//! other families explicitly.

use std::collections::BTreeMap;

use ae_workload::{BuiltinFamily, QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::evaluation::ActualRuns;
use autoexecutor::{AutoExecutorConfig, TrainingData};

/// Number of repeated runs used when measuring ground-truth curves.
pub const ACTUAL_RUN_REPEATS: usize = 3;

/// Cache key: one artifact per family per scale factor.
type Key = (BuiltinFamily, u32);

/// Lazily-built shared state for all experiments.
#[derive(Default)]
pub struct ExperimentContext {
    /// Pipeline configuration shared by the experiments (paper defaults).
    pub config: AutoExecutorConfig,
    suites: BTreeMap<Key, Vec<QueryInstance>>,
    training: BTreeMap<Key, TrainingData>,
    actuals: BTreeMap<Key, ActualRuns>,
}

impl ExperimentContext {
    /// Creates an empty context with the paper-default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full suite of one family at the given scale factor (cached).
    pub fn suite_for(&mut self, family: BuiltinFamily, sf: ScaleFactor) -> &[QueryInstance] {
        self.suites.entry((family, sf.0)).or_insert_with(|| {
            eprintln!("[context] generating {family} {sf} suite ...");
            WorkloadGenerator::builtin(family, sf).suite()
        })
    }

    /// The default family's suite at the given scale factor (cached).
    pub fn suite(&mut self, sf: ScaleFactor) -> &[QueryInstance] {
        self.suite_for(self.config.workload_family, sf)
    }

    /// Training data (single n=16 run + Sparklens augmentation + PPM labels)
    /// for one family and scale factor (cached).
    pub fn training_data_for(&mut self, family: BuiltinFamily, sf: ScaleFactor) -> TrainingData {
        if !self.training.contains_key(&(family, sf.0)) {
            let config = self.config;
            let suite = self.suite_for(family, sf).to_vec();
            eprintln!(
                "[context] collecting {family} training data at {sf} ({} queries) ...",
                suite.len()
            );
            let data = TrainingData::collect(&suite, &config).expect("training-data collection");
            self.training.insert((family, sf.0), data);
        }
        self.training[&(family, sf.0)].clone()
    }

    /// The default family's training data (cached).
    pub fn training_data(&mut self, sf: ScaleFactor) -> TrainingData {
        self.training_data_for(self.config.workload_family, sf)
    }

    /// Ground-truth run-time curves at the training counts for one family
    /// and scale factor (cached). Uses [`ACTUAL_RUN_REPEATS`] repeats with
    /// outlier-filtered means, as in Section 5.1.
    pub fn actuals_for(&mut self, family: BuiltinFamily, sf: ScaleFactor) -> ActualRuns {
        if !self.actuals.contains_key(&(family, sf.0)) {
            let config = self.config;
            let counts = config.training_counts;
            let suite = self.suite_for(family, sf).to_vec();
            eprintln!(
                "[context] measuring {family} ground truth at {sf} ({} queries x {} counts x {} repeats) ...",
                suite.len(),
                counts.len(),
                ACTUAL_RUN_REPEATS
            );
            let actuals = ActualRuns::collect(
                &suite,
                &counts,
                ACTUAL_RUN_REPEATS,
                &config.cluster,
                0xAE_2023,
            )
            .expect("ground-truth collection");
            self.actuals.insert((family, sf.0), actuals);
        }
        self.actuals[&(family, sf.0)].clone()
    }

    /// The default family's ground truth (cached).
    pub fn actuals(&mut self, sf: ScaleFactor) -> ActualRuns {
        self.actuals_for(self.config.workload_family, sf)
    }

    /// One query instance by name from the default family at a scale factor
    /// (no caching needed).
    pub fn query(&self, name: &str, sf: ScaleFactor) -> QueryInstance {
        WorkloadGenerator::builtin(self.config.workload_family, sf).instance(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_cached_and_complete() {
        let mut ctx = ExperimentContext::new();
        let len_first = ctx.suite(ScaleFactor::SF10).len();
        let len_second = ctx.suite(ScaleFactor::SF10).len();
        assert_eq!(len_first, 103);
        assert_eq!(len_second, 103);
    }

    #[test]
    fn per_family_suites_are_distinct_cache_entries() {
        let mut ctx = ExperimentContext::new();
        assert_eq!(
            ctx.suite_for(BuiltinFamily::Tpch, ScaleFactor::SF10).len(),
            22
        );
        assert_eq!(
            ctx.suite_for(BuiltinFamily::Skew, ScaleFactor::SF10).len(),
            24
        );
        assert_eq!(
            ctx.suite_for(BuiltinFamily::Tpcds, ScaleFactor::SF10).len(),
            103
        );
        assert!(ctx
            .suite_for(BuiltinFamily::Tpch, ScaleFactor::SF10)
            .iter()
            .all(|q| q.family == "tpch"));
    }

    #[test]
    fn default_family_follows_config() {
        let mut ctx = ExperimentContext::new();
        ctx.config = ctx.config.with_workload_family(BuiltinFamily::Tpch);
        assert_eq!(ctx.suite(ScaleFactor::SF10).len(), 22);
        let q = ctx.query("h3", ScaleFactor::SF10);
        assert_eq!(q.family, "tpch");
    }

    #[test]
    fn query_lookup_matches_suite_entry() {
        let ctx = ExperimentContext::new();
        let q = ctx.query("q94", ScaleFactor::SF10);
        assert_eq!(q.name, "q94");
        assert_eq!(q.scale_factor, ScaleFactor::SF10);
    }
}
