//! Criterion benches for the offline training path (Section 5.6):
//! PPM-parameter fitting per training point and random-forest training over
//! the full workload, contrasted with a non-parametric training set.

use ae_ppm::fit::{fit_amdahl, fit_power_law};
use ae_ppm::model::PpmKind;
use ae_workload::{ScaleFactor, WorkloadGenerator};
use autoexecutor::{AutoExecutorConfig, FeatureSet, ParameterModel, TrainingData};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn training_inputs() -> (
    Vec<ae_workload::QueryInstance>,
    AutoExecutorConfig,
    TrainingData,
) {
    let suite = WorkloadGenerator::new(ScaleFactor::SF10).suite();
    let mut config = AutoExecutorConfig::default();
    config.training_run.noise_cv = 0.0;
    let data = TrainingData::collect(&suite, &config).expect("training data");
    (suite, config, data)
}

fn bench_data_collection(c: &mut Criterion) {
    // The offline phase the paper re-runs whenever the workload drifts:
    // one simulated run per query plus Sparklens extrapolation. Parallel
    // across queries; bounded by the scheduler hot loop.
    let suite = WorkloadGenerator::new(ScaleFactor::SF10).suite();
    let mut config = AutoExecutorConfig::default();
    config.training_run.noise_cv = 0.0;
    let mut group = c.benchmark_group("training_data");
    group.sample_size(10);
    group.bench_function("collect_103_queries", |b| {
        b.iter(|| TrainingData::collect(black_box(&suite), &config).unwrap())
    });
    group.finish();
}

fn bench_ppm_fit(c: &mut Criterion) {
    let (_, _, data) = training_inputs();
    let curve = data.examples[0].sparklens_curve.clone();
    c.bench_function("ppm_fit/power_law_per_point", |b| {
        b.iter(|| fit_power_law(black_box(&curve)).unwrap())
    });
    c.bench_function("ppm_fit/amdahl_per_point", |b| {
        b.iter(|| fit_amdahl(black_box(&curve)).unwrap())
    });
}

fn bench_forest_training(c: &mut Criterion) {
    let (_, config, data) = training_inputs();
    let dataset = data
        .to_dataset(PpmKind::PowerLaw, FeatureSet::F0)
        .expect("dataset");
    let mut group = c.benchmark_group("parameter_model_training");
    group.sample_size(10);
    group.bench_function("random_forest_103_queries", |b| {
        b.iter_batched(
            || dataset.clone(),
            |ds| {
                ParameterModel::train_on_dataset(
                    black_box(&ds),
                    PpmKind::PowerLaw,
                    FeatureSet::F0,
                    config.forest,
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_parametric_vs_nonparametric_dataset(c: &mut Criterion) {
    // The paper's argument for the parametric PPM: one row per query instead
    // of one row per (query, configuration). Compare dataset-construction
    // plus model-training cost for both designs.
    let (_, config, data) = training_inputs();
    let mut group = c.benchmark_group("training_set_design");
    group.sample_size(10);

    group.bench_function("parametric_one_row_per_query", |b| {
        b.iter(|| {
            let dataset = data.to_dataset(PpmKind::PowerLaw, FeatureSet::F0).unwrap();
            ParameterModel::train_on_dataset(
                &dataset,
                PpmKind::PowerLaw,
                FeatureSet::F0,
                config.forest,
            )
            .unwrap()
        })
    });

    group.bench_function("nonparametric_row_per_configuration", |b| {
        b.iter(|| {
            // Directly regress run time from (features, n) pairs: 6x the rows.
            let mut dataset = ae_ml::dataset::Dataset::new(
                {
                    let mut names = autoexecutor::full_feature_names();
                    names.push("executors".to_string());
                    names
                },
                vec!["time".to_string()],
            );
            for example in &data.examples {
                for &(n, t) in &example.sparklens_curve {
                    let mut row = example.full_features.clone();
                    row.push(n as f64);
                    dataset
                        .push_row(format!("{}@{n}", example.name), row, vec![t])
                        .unwrap();
                }
            }
            let mut forest = ae_ml::forest::RandomForestRegressor::new(config.forest);
            forest.fit(&dataset).unwrap();
            black_box(forest.num_trees())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_data_collection,
    bench_ppm_fit,
    bench_forest_training,
    bench_parametric_vs_nonparametric_dataset
);
criterion_main!(benches);
