//! Criterion benches for configuration selection: bounded-slowdown and
//! elbow-point selection over interpolated curves, and executor-size
//! factorization — the per-query decision costs inside the optimizer rule.

use ae_ppm::cores::{factorize_total_cores, FactorizationConstraints};
use ae_ppm::curve::PerfCurve;
use ae_ppm::model::{AmdahlPpm, PowerLawPpm, Ppm};
use ae_ppm::selection::{elbow_point, slowdown_config};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn dense_curve() -> Vec<(usize, f64)> {
    let ppm = Ppm::PowerLaw(PowerLawPpm::new(-0.75, 480.0, 55.0));
    ppm.predict_curve(&(1..=48).collect::<Vec<_>>())
}

fn bench_selection(c: &mut Criterion) {
    let curve = dense_curve();
    c.bench_function("selection/bounded_slowdown_h105", |b| {
        b.iter(|| slowdown_config(black_box(&curve), 1.05))
    });
    c.bench_function("selection/elbow_point", |b| {
        b.iter(|| elbow_point(black_box(&curve)))
    });
}

fn bench_interpolation(c: &mut Criterion) {
    let sparse: Vec<(usize, f64)> = [1usize, 3, 8, 16, 32, 48]
        .iter()
        .map(|&n| {
            (
                n,
                Ppm::Amdahl(AmdahlPpm::new(30.0, 470.0)).predict(n as f64),
            )
        })
        .collect();
    c.bench_function("selection/interpolate_sparse_to_48_points", |b| {
        b.iter(|| {
            let curve = PerfCurve::from_samples(black_box(&sparse));
            curve.evaluate_integer_range(1, 48)
        })
    });
}

fn bench_factorization(c: &mut Criterion) {
    let constraints = FactorizationConstraints::paper_default();
    c.bench_function("selection/factorize_total_cores", |b| {
        b.iter(|| factorize_total_cores(black_box(96), &constraints))
    });
}

criterion_group!(
    benches,
    bench_selection,
    bench_interpolation,
    bench_factorization
);
criterion_main!(benches);
