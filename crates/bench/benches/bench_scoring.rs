//! Criterion benches for the online (in-optimizer) path: plan featurization,
//! parameter-model inference, portable-model load, and the full
//! AutoExecutor rule — the latencies Section 5.6 reports.

use std::sync::Arc;

use ae_ml::portable::ScoringRuntime;
use ae_workload::{ScaleFactor, WorkloadGenerator};
use autoexecutor::{
    featurize_plan, AutoExecutorConfig, AutoExecutorRule, ModelRegistry, Optimizer, ParameterModel,
    TrainingData,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

struct ScoringFixture {
    config: AutoExecutorConfig,
    model: ParameterModel,
    model_bytes: Vec<u8>,
    test_plan: ae_engine::QueryPlan,
}

fn fixture() -> ScoringFixture {
    let suite = WorkloadGenerator::new(ScaleFactor::SF10).suite();
    let mut config = AutoExecutorConfig::default();
    config.training_run.noise_cv = 0.0;
    let data = TrainingData::collect(&suite, &config).expect("training data");
    let model = ParameterModel::train(&data, &config).expect("training");
    let model_bytes = model
        .to_portable("bench")
        .expect("export")
        .to_bytes()
        .expect("serialize");
    let test_plan = WorkloadGenerator::new(ScaleFactor::SF100)
        .instance("q94")
        .plan;
    ScoringFixture {
        config,
        model,
        model_bytes,
        test_plan,
    }
}

fn bench_scoring_path(c: &mut Criterion) {
    let fixture = fixture();

    c.bench_function("scoring/plan_featurization", |b| {
        b.iter(|| featurize_plan(black_box(&fixture.test_plan)))
    });

    c.bench_function("scoring/parameter_model_inference", |b| {
        b.iter(|| {
            fixture
                .model
                .predict_ppm(black_box(&fixture.test_plan))
                .unwrap()
        })
    });

    c.bench_function("scoring/ppm_curve_evaluation_48_points", |b| {
        let ppm = fixture.model.predict_ppm(&fixture.test_plan).unwrap();
        let counts: Vec<usize> = (1..=48).collect();
        b.iter(|| ppm.predict_curve(black_box(&counts)))
    });

    let mut group = c.benchmark_group("scoring/portable_model");
    group.sample_size(20);
    group.bench_function("load_and_setup", |b| {
        b.iter(|| ScoringRuntime::from_bytes(black_box(&fixture.model_bytes)).unwrap())
    });
    group.finish();
}

fn bench_full_rule(c: &mut Criterion) {
    let fixture = fixture();
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("bench", fixture.model.to_portable("bench").unwrap())
        .unwrap();
    let optimizer = Optimizer::with_default_rules().with_rule(Box::new(
        AutoExecutorRule::from_config(registry, "bench", &fixture.config),
    ));
    // Warm the cache so the steady-state per-query cost is measured.
    optimizer.optimize(fixture.test_plan.clone()).unwrap();

    c.bench_function("scoring/autoexecutor_rule_end_to_end", |b| {
        b.iter(|| {
            optimizer
                .optimize(black_box(fixture.test_plan.clone()))
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_scoring_path, bench_full_rule);
criterion_main!(benches);
