//! Criterion benches for the execution-simulation substrate: single-query
//! runs under each allocation policy and Sparklens estimate generation.
//! These bound how fast ground truth and training data can be (re)collected.

use ae_engine::{AllocationPolicy, ClusterConfig, RunConfig, Simulator};
use ae_sparklens::SparklensAnalyzer;
use ae_workload::{ScaleFactor, WorkloadGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_query_simulation(c: &mut Criterion) {
    let query = WorkloadGenerator::new(ScaleFactor::SF100).instance("q94");
    let cluster = ClusterConfig::paper_default();
    let run_cfg = RunConfig::default();

    let mut group = c.benchmark_group("simulation/q94_sf100");
    for (label, policy) in [
        ("static_16", AllocationPolicy::static_allocation(16)),
        ("static_48", AllocationPolicy::static_allocation(48)),
        ("dynamic_1_48", AllocationPolicy::dynamic(1, 48)),
        ("predictive_25", AllocationPolicy::predictive(25)),
    ] {
        let simulator = Simulator::new(cluster, policy).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| simulator.run("q94", black_box(&query.dag), &run_cfg))
        });
    }
    group.finish();
}

fn bench_suite_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.sample_size(10);
    group.bench_function("generate_103_query_suite_sf100", |b| {
        b.iter(|| WorkloadGenerator::new(ScaleFactor::SF100).suite())
    });
    group.finish();
}

fn bench_sparklens(c: &mut Criterion) {
    let query = WorkloadGenerator::new(ScaleFactor::SF100).instance("q94");
    let simulator = Simulator::new(
        ClusterConfig::paper_default(),
        AllocationPolicy::static_allocation(16),
    )
    .unwrap();
    let log = simulator
        .run(
            "q94",
            &query.dag,
            &RunConfig::deterministic().with_task_log(),
        )
        .task_log
        .unwrap();
    let analyzer = SparklensAnalyzer::paper_default();
    let counts: Vec<usize> = (1..=48).collect();

    c.bench_function("sparklens/estimate_48_counts_from_one_log", |b| {
        b.iter(|| analyzer.estimate_from_log(black_box(&log), &counts))
    });
}

criterion_group!(
    benches,
    bench_query_simulation,
    bench_suite_generation,
    bench_sparklens
);
criterion_main!(benches);
