//! # ae-sparklens — post-hoc executor-count analysis from a single run
//!
//! Qubole Sparklens analyses the event log of a completed Spark application
//! and, by simulating the Spark scheduler, estimates what the application's
//! run time *would have been* with different executor counts. The paper uses
//! it in two roles:
//!
//! 1. **Training-data augmentation** — each training query is run once
//!    (at n = 16) and Sparklens extrapolates its run-time curve over all
//!    candidate executor counts (Section 4.1), avoiding expensive re-runs.
//! 2. **A post-hoc baseline** — the `S` series in Figures 4, 8, 9 and 14.
//!
//! [`SparklensAnalyzer`] reproduces the algorithmic core: from a
//! [`TaskLog`] it derives, per stage, the critical (longest) task time and
//! the total task work, and estimates the stage time at `n` executors as
//! `max(longest task, total work / slots)` — work spreading bounded below by
//! the critical path. Estimates are therefore deterministic and monotone
//! non-increasing in `n`, exactly the properties the paper relies on
//! (Section 3.1, reason 3).

#![warn(missing_docs)]
#![deny(unsafe_code)]

use ae_engine::stage::TaskLog;
use serde::{Deserialize, Serialize};

/// Configuration of the analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparklensConfig {
    /// Cores per executor assumed when converting executor counts to slots.
    pub cores_per_executor: usize,
    /// Fraction of per-stage scheduling overhead added per wave of tasks
    /// (models task launch latency; small).
    pub per_wave_overhead_secs: f64,
}

impl Default for SparklensConfig {
    fn default() -> Self {
        Self {
            cores_per_executor: 4,
            per_wave_overhead_secs: 0.05,
        }
    }
}

/// Per-stage summary extracted from the task log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Stage identifier.
    pub stage_id: usize,
    /// Parent stage ids.
    pub parents: Vec<usize>,
    /// Number of tasks in the stage.
    pub num_tasks: usize,
    /// Total task work in core-seconds.
    pub total_work_secs: f64,
    /// Longest single task (the stage's critical time).
    pub critical_task_secs: f64,
}

/// The full analysis of one run: per-stage summaries plus driver overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparklensReport {
    /// Query name from the log.
    pub query_name: String,
    /// Executor count of the observed run.
    pub observed_executors: usize,
    /// Observed elapsed time.
    pub observed_elapsed_secs: f64,
    /// Per-stage summaries in DAG order.
    pub stages: Vec<StageSummary>,
    /// Driver-side time not attributable to tasks.
    pub driver_overhead_secs: f64,
}

impl SparklensReport {
    /// Total task work across stages, in core-seconds.
    pub fn total_work_secs(&self) -> f64 {
        self.stages.iter().map(|s| s.total_work_secs).sum()
    }

    /// Critical-path time through the stage DAG (unbounded parallelism).
    pub fn critical_path_secs(&self) -> f64 {
        let mut completion = vec![0.0f64; self.stages.len()];
        for (idx, stage) in self.stages.iter().enumerate() {
            let ready = stage
                .parents
                .iter()
                .map(|&p| completion[p])
                .fold(0.0, f64::max);
            completion[idx] = ready + stage.critical_task_secs;
        }
        completion.into_iter().fold(0.0, f64::max)
    }
}

/// The analyzer: turns task logs into run-time estimates per executor count.
#[derive(Debug, Clone, Copy, Default)]
pub struct SparklensAnalyzer {
    config: SparklensConfig,
}

impl SparklensAnalyzer {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: SparklensConfig) -> Self {
        Self { config }
    }

    /// Creates an analyzer with the paper's configuration (4-core executors).
    pub fn paper_default() -> Self {
        Self::new(SparklensConfig::default())
    }

    /// Summarises a task log into a report.
    pub fn analyze(&self, log: &TaskLog) -> SparklensReport {
        let stages = log
            .stages
            .iter()
            .map(|stage| {
                let total: f64 = stage.task_durations_secs.iter().sum();
                let critical = stage
                    .task_durations_secs
                    .iter()
                    .copied()
                    .fold(0.0, f64::max);
                StageSummary {
                    stage_id: stage.stage_id,
                    parents: stage.parents.clone(),
                    num_tasks: stage.task_durations_secs.len(),
                    total_work_secs: total,
                    critical_task_secs: critical,
                }
            })
            .collect();
        SparklensReport {
            query_name: log.query_name.clone(),
            observed_executors: log.executors,
            observed_elapsed_secs: log.elapsed_secs,
            stages,
            driver_overhead_secs: log.driver_overhead_secs,
        }
    }

    /// Estimates the application run time with `executors` executors.
    ///
    /// Each stage takes `max(critical task, total work / slots)` plus a small
    /// per-wave launch overhead; stages are laid out along the DAG's critical
    /// path; driver overhead is added once. The estimate is monotone
    /// non-increasing in `executors`.
    pub fn estimate_elapsed_secs(&self, report: &SparklensReport, executors: usize) -> f64 {
        let executors = executors.max(1);
        let slots = (executors * self.config.cores_per_executor.max(1)) as f64;
        let mut completion = vec![0.0f64; report.stages.len()];
        for (idx, stage) in report.stages.iter().enumerate() {
            let ready = stage
                .parents
                .iter()
                .map(|&p| completion[p])
                .fold(0.0, f64::max);
            let spread = stage.total_work_secs / slots;
            let waves = (stage.num_tasks as f64 / slots).ceil().max(1.0);
            let stage_time =
                stage.critical_task_secs.max(spread) + waves * self.config.per_wave_overhead_secs;
            completion[idx] = ready + stage_time;
        }
        report.driver_overhead_secs + completion.into_iter().fold(0.0, f64::max)
    }

    /// Estimates the run-time curve over a set of executor counts, returning
    /// `(executors, estimated seconds)` pairs in the given order.
    pub fn estimate_curve(
        &self,
        report: &SparklensReport,
        executor_counts: &[usize],
    ) -> Vec<(usize, f64)> {
        executor_counts
            .iter()
            .map(|&n| (n, self.estimate_elapsed_secs(report, n)))
            .collect()
    }

    /// Convenience: analyse a log and estimate a curve in one call.
    pub fn estimate_from_log(&self, log: &TaskLog, executor_counts: &[usize]) -> Vec<(usize, f64)> {
        let report = self.analyze(log);
        self.estimate_curve(&report, executor_counts)
    }

    /// Recommends the smallest executor count whose estimated time is within
    /// `slack` (e.g. 1.05 = 5%) of the best estimated time over `candidates`
    /// — the "better executor count" suggestion Sparklens gives users.
    pub fn recommend_executors(
        &self,
        report: &SparklensReport,
        candidates: &[usize],
        slack: f64,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let times: Vec<(usize, f64)> = self.estimate_curve(report, candidates);
        let best = times.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
        let mut sorted = times;
        sorted.sort_by_key(|&(n, _)| n);
        sorted
            .into_iter()
            .find(|&(_, t)| t <= best * slack.max(1.0))
            .map(|(n, _)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_engine::stage::{StageLog, TaskLog};

    fn toy_log() -> TaskLog {
        TaskLog {
            query_name: "toy".into(),
            executors: 16,
            cores_per_executor: 4,
            stages: vec![
                StageLog {
                    stage_id: 0,
                    parents: vec![],
                    task_durations_secs: vec![2.0; 64], // 128 core-seconds
                },
                StageLog {
                    stage_id: 1,
                    parents: vec![0],
                    task_durations_secs: vec![10.0], // serial tail
                },
            ],
            records: vec![],
            driver_overhead_secs: 5.0,
            elapsed_secs: 20.0,
        }
    }

    #[test]
    fn report_summarises_stages() {
        let analyzer = SparklensAnalyzer::paper_default();
        let report = analyzer.analyze(&toy_log());
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].num_tasks, 64);
        assert!((report.stages[0].total_work_secs - 128.0).abs() < 1e-9);
        assert!((report.stages[0].critical_task_secs - 2.0).abs() < 1e-9);
        assert!((report.total_work_secs() - 138.0).abs() < 1e-9);
        assert!((report.critical_path_secs() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn estimates_are_monotone_non_increasing() {
        let analyzer = SparklensAnalyzer::paper_default();
        let report = analyzer.analyze(&toy_log());
        let mut last = f64::INFINITY;
        for n in 1..=48 {
            let t = analyzer.estimate_elapsed_secs(&report, n);
            assert!(t <= last + 1e-9, "estimate increased at n={n}");
            last = t;
        }
    }

    #[test]
    fn estimates_saturate_at_critical_path_plus_driver() {
        let analyzer = SparklensAnalyzer::paper_default();
        let report = analyzer.analyze(&toy_log());
        let t_large = analyzer.estimate_elapsed_secs(&report, 1000);
        // 5 (driver) + 2 (stage 0 critical) + 10 (tail) plus tiny overheads.
        assert!((t_large - 17.0).abs() < 0.5, "saturated estimate {t_large}");
    }

    #[test]
    fn single_executor_estimate_close_to_serial_time() {
        let analyzer = SparklensAnalyzer::paper_default();
        let report = analyzer.analyze(&toy_log());
        let t1 = analyzer.estimate_elapsed_secs(&report, 1);
        // 128/4 = 32 for stage 0 (work-bound), 10 for the tail, 5 driver.
        assert!((t1 - 47.0).abs() < 2.0, "t1 = {t1}");
    }

    #[test]
    fn zero_executors_treated_as_one() {
        let analyzer = SparklensAnalyzer::paper_default();
        let report = analyzer.analyze(&toy_log());
        assert_eq!(
            analyzer.estimate_elapsed_secs(&report, 0),
            analyzer.estimate_elapsed_secs(&report, 1)
        );
    }

    #[test]
    fn curve_preserves_requested_order() {
        let analyzer = SparklensAnalyzer::paper_default();
        let report = analyzer.analyze(&toy_log());
        let curve = analyzer.estimate_curve(&report, &[8, 1, 32]);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].0, 8);
        assert_eq!(curve[1].0, 1);
        assert_eq!(curve[2].0, 32);
    }

    #[test]
    fn recommendation_picks_smallest_count_within_slack() {
        let analyzer = SparklensAnalyzer::paper_default();
        let report = analyzer.analyze(&toy_log());
        let candidates: Vec<usize> = (1..=48).collect();
        let rec = analyzer
            .recommend_executors(&report, &candidates, 1.05)
            .unwrap();
        // Stage 0 needs 64 slots = 16 executors for one wave, but the 10 s
        // serial tail dominates, so far fewer executors stay within 5%.
        assert!(rec < 16, "recommended {rec}");
        let t_rec = analyzer.estimate_elapsed_secs(&report, rec);
        let t_best = analyzer.estimate_elapsed_secs(&report, 48);
        assert!(t_rec <= t_best * 1.05 + 1e-9);
    }

    #[test]
    fn recommendation_empty_candidates_is_none() {
        let analyzer = SparklensAnalyzer::paper_default();
        let report = analyzer.analyze(&toy_log());
        assert_eq!(analyzer.recommend_executors(&report, &[], 1.1), None);
    }
}
