//! Integration tests: Sparklens estimates versus the simulator's actual
//! behaviour on generated workloads — the relationship the paper relies on
//! when augmenting training data from a single n=16 run.

use ae_engine::{AllocationPolicy, ClusterConfig, RunConfig, Simulator};
use ae_sparklens::SparklensAnalyzer;
use ae_workload::{ScaleFactor, WorkloadGenerator};
use proptest::prelude::*;

/// Runs a query once at `n` executors and returns its task log.
fn run_once(name: &str, n: usize, sf: ScaleFactor) -> ae_engine::TaskLog {
    let query = WorkloadGenerator::new(sf).instance(name);
    let sim = Simulator::new(
        ClusterConfig::paper_default(),
        AllocationPolicy::static_allocation(n),
    )
    .unwrap();
    sim.run(
        name,
        &query.dag,
        &RunConfig::deterministic().with_task_log(),
    )
    .task_log
    .unwrap()
}

#[test]
fn estimates_track_actual_runs_within_a_factor() {
    // The paper reports Sparklens errors up to ~30–80% at n=1 and much
    // smaller at mid/large n; here we only require the right order of
    // magnitude at the observed configuration and the right shape elsewhere.
    let analyzer = SparklensAnalyzer::paper_default();
    for name in ["q94", "q5", "q42"] {
        let log = run_once(name, 16, ScaleFactor::SF10);
        let report = analyzer.analyze(&log);
        let estimate_at_16 = analyzer.estimate_elapsed_secs(&report, 16);
        let actual = log.elapsed_secs;
        let ratio = estimate_at_16 / actual;
        assert!(
            (0.5..=1.2).contains(&ratio),
            "{name}: estimate {estimate_at_16} vs actual {actual} (ratio {ratio})"
        );
    }
}

#[test]
fn estimates_monotone_for_generated_queries() {
    let analyzer = SparklensAnalyzer::paper_default();
    let log = run_once("q23", 16, ScaleFactor::SF10);
    let report = analyzer.analyze(&log);
    let curve = analyzer.estimate_curve(&report, &(1..=48).collect::<Vec<_>>());
    for pair in curve.windows(2) {
        assert!(pair[1].1 <= pair[0].1 + 1e-9);
    }
}

#[test]
fn observed_executor_count_does_not_bias_estimates_much() {
    // Logs taken at different executor counts should produce similar
    // estimate curves (the stage work is what matters, not where it ran).
    let analyzer = SparklensAnalyzer::paper_default();
    let log8 = run_once("q11", 8, ScaleFactor::SF10);
    let log32 = run_once("q11", 32, ScaleFactor::SF10);
    let r8 = analyzer.analyze(&log8);
    let r32 = analyzer.analyze(&log32);
    for n in [4usize, 16, 48] {
        let a = analyzer.estimate_elapsed_secs(&r8, n);
        let b = analyzer.estimate_elapsed_secs(&r32, n);
        let rel = (a - b).abs() / a.max(b);
        assert!(rel < 0.1, "n={n}: {a} vs {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any generated query, the Sparklens estimate at very large n is
    /// bounded below by driver overhead + critical path, and the estimate at
    /// n=1 is bounded above by driver + total work (divided by one executor's
    /// cores) + per-wave overheads.
    #[test]
    fn estimate_bounds_hold(query_idx in 0usize..103) {
        let names = ae_workload::tpcds_query_names();
        let name = &names[query_idx];
        let log = run_once(name, 16, ScaleFactor::SF10);
        let analyzer = SparklensAnalyzer::paper_default();
        let report = analyzer.analyze(&log);
        let saturated = analyzer.estimate_elapsed_secs(&report, 10_000);
        let lower = report.driver_overhead_secs + report.critical_path_secs();
        prop_assert!(saturated >= lower - 1e-6);
        let t1 = analyzer.estimate_elapsed_secs(&report, 1);
        let upper = report.driver_overhead_secs + report.total_work_secs() / 4.0
            + report.stages.len() as f64 * 10.0;
        prop_assert!(t1 <= upper + report.critical_path_secs() + 1e-6);
    }
}
