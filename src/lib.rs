//! Workspace umbrella crate.
//!
//! Exists so the repository-level `tests/` (cross-crate integration tests)
//! and `examples/` have a package to hang off. Re-exports the public crates
//! for convenience.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use ae_engine;
pub use ae_ml;
pub use ae_ppm;
pub use ae_serve;
pub use ae_sparklens;
pub use ae_workload;
pub use autoexecutor;
