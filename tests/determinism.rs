//! Determinism of the parallel pipeline: every parallelized stage —
//! training-data collection, ground-truth collection, random-forest
//! training, and cross-validation — must produce **bit-identical** results
//! whether it runs on one worker thread or many. The guarantee comes from
//! per-unit seed streams (`rand::derive_stream_seed`) plus index-ordered
//! reduction, so this suite pins the property the whole offline phase
//! relies on.

use ae_engine::ClusterConfig;
use ae_ml::dataset::Dataset;
use ae_ml::forest::{RandomForestConfig, RandomForestRegressor};
use ae_workload::{BuiltinFamily, QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::{
    cross_validate, ActualRuns, AutoExecutorConfig, CrossValidationConfig, TrainingData,
};
use rayon::ThreadPoolBuilder;

fn with_pool<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(op)
}

fn workload(n: usize) -> Vec<QueryInstance> {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    (1..=n)
        .map(|i| generator.instance(&format!("q{i}")))
        .collect()
}

fn fast_config() -> AutoExecutorConfig {
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = 12;
    config
}

fn assert_training_data_eq(a: &TrainingData, b: &TrainingData) {
    assert_eq!(a.len(), b.len());
    for (ea, eb) in a.examples.iter().zip(&b.examples) {
        assert_eq!(ea.name, eb.name);
        assert_eq!(ea.family, eb.family);
        // f64 comparisons are intentionally exact: the parallel and
        // sequential paths must agree bit for bit, not approximately.
        assert_eq!(ea.full_features, eb.full_features);
        assert_eq!(ea.sparklens_curve, eb.sparklens_curve);
        assert_eq!(ea.observed_elapsed_secs, eb.observed_elapsed_secs);
        assert_eq!(ea.power_law, eb.power_law);
        assert_eq!(ea.amdahl, eb.amdahl);
    }
}

#[test]
fn training_data_collection_is_thread_count_invariant() {
    let queries = workload(12);
    let config = fast_config();
    let serial = with_pool(1, || TrainingData::collect(&queries, &config).unwrap());
    let wide = with_pool(8, || TrainingData::collect(&queries, &config).unwrap());
    assert_training_data_eq(&serial, &wide);
}

/// The guarantee is family-generic: training-data and ground-truth
/// collection over the TPC-H-like and skew-adversarial suites must be
/// bit-identical at any worker-thread count, exactly like the TPC-DS-like
/// suite above.
#[test]
fn new_family_pipelines_are_thread_count_invariant() {
    let config = fast_config();
    let cluster = ClusterConfig::paper_default();
    let counts = [1usize, 8, 48];
    for family in [BuiltinFamily::Tpch, BuiltinFamily::Skew] {
        let generator = WorkloadGenerator::builtin(family, ScaleFactor::SF10);
        let names = family.family().query_names();
        let queries: Vec<QueryInstance> = names
            .iter()
            .take(10)
            .map(|name| generator.instance(name))
            .collect();

        let serial = with_pool(1, || TrainingData::collect(&queries, &config).unwrap());
        let wide = with_pool(8, || TrainingData::collect(&queries, &config).unwrap());
        assert_training_data_eq(&serial, &wide);
        assert!(serial.examples.iter().all(|e| e.family == family.key()));

        let serial_actuals = with_pool(1, || {
            ActualRuns::collect(&queries, &counts, 2, &cluster, 11).unwrap()
        });
        let wide_actuals = with_pool(8, || {
            ActualRuns::collect(&queries, &counts, 2, &cluster, 11).unwrap()
        });
        for query in &queries {
            assert_eq!(
                serial_actuals.curve(&query.name).unwrap(),
                wide_actuals.curve(&query.name).unwrap(),
                "{}/{} ground truth differs across thread counts",
                family.key(),
                query.name
            );
        }
    }
}

#[test]
fn ground_truth_collection_is_thread_count_invariant() {
    let queries = workload(8);
    let cluster = ClusterConfig::paper_default();
    let counts = [1usize, 8, 16, 48];
    let serial = with_pool(1, || {
        ActualRuns::collect(&queries, &counts, 3, &cluster, 7).unwrap()
    });
    let wide = with_pool(8, || {
        ActualRuns::collect(&queries, &counts, 3, &cluster, 7).unwrap()
    });
    assert_eq!(serial.names(), wide.names());
    for query in &queries {
        assert_eq!(
            serial.curve(&query.name).unwrap(),
            wide.curve(&query.name).unwrap(),
            "{} ground truth differs across thread counts",
            query.name
        );
    }
}

#[test]
fn forest_training_is_thread_count_invariant() {
    let mut data = Dataset::new(
        vec!["x0".into(), "x1".into()],
        vec!["y0".into(), "y1".into()],
    );
    for i in 0..80 {
        let x0 = (i % 17) as f64;
        let x1 = (i % 5) as f64;
        data.push_row(
            format!("r{i}"),
            vec![x0, x1],
            vec![3.0 * x0 + x1, 100.0 - x0],
        )
        .unwrap();
    }
    let config = RandomForestConfig {
        n_estimators: 40,
        max_features_fraction: 0.5,
        seed: 11,
        ..Default::default()
    };
    let serial = with_pool(1, || {
        let mut rf = RandomForestRegressor::new(config);
        rf.fit(&data).unwrap();
        rf
    });
    let wide = with_pool(8, || {
        let mut rf = RandomForestRegressor::new(config);
        rf.fit(&data).unwrap();
        rf
    });
    assert_eq!(serial.total_nodes(), wide.total_nodes());
    for i in 0..40 {
        let row = vec![(i % 19) as f64, (i % 7) as f64];
        assert_eq!(
            serial.predict(&row).unwrap(),
            wide.predict(&row).unwrap(),
            "forest predictions differ across thread counts at {row:?}"
        );
    }
    // The portable serialization must agree byte for byte as well.
    let bytes_serial = ae_ml::portable::PortableModel::from_forest("d", serial)
        .unwrap()
        .to_bytes()
        .unwrap();
    let bytes_wide = ae_ml::portable::PortableModel::from_forest("d", wide)
        .unwrap()
        .to_bytes()
        .unwrap();
    assert_eq!(bytes_serial, bytes_wide);
}

#[test]
fn cross_validation_is_thread_count_invariant() {
    let queries = workload(8);
    let config = fast_config();
    let data = TrainingData::collect(&queries, &config).unwrap();
    let actuals =
        ActualRuns::collect(&queries, &[1, 8, 48], 1, &ClusterConfig::paper_default(), 3).unwrap();
    let cv = CrossValidationConfig::quick(5);
    let counts = [1usize, 8, 48];
    let serial = with_pool(1, || {
        cross_validate(&data, &actuals, &config, &cv, &counts).unwrap()
    });
    let wide = with_pool(8, || {
        cross_validate(&data, &actuals, &config, &cv, &counts).unwrap()
    });
    assert_eq!(serial.folds.len(), wide.folds.len());
    for (fa, fb) in serial.folds.iter().zip(&wide.folds) {
        assert_eq!((fa.repeat, fa.fold), (fb.repeat, fb.fold));
        assert_eq!(fa.train_error_by_count, fb.train_error_by_count);
        assert_eq!(fa.test_error_by_count, fb.test_error_by_count);
        assert_eq!(fa.test_predictions.len(), fb.test_predictions.len());
        for (pa, pb) in fa.test_predictions.iter().zip(&fb.test_predictions) {
            assert_eq!(pa.name, pb.name);
            assert_eq!(pa.curve, pb.curve);
        }
    }
}

#[test]
fn permutation_importance_is_thread_count_invariant() {
    let mut data = Dataset::new(vec!["signal".into(), "noise".into()], vec!["y".into()]);
    for i in 0..100 {
        let signal = (i % 13) as f64;
        let noise = ((i * 7919) % 11) as f64;
        data.push_row(format!("r{i}"), vec![signal, noise], vec![10.0 * signal])
            .unwrap();
    }
    let mut rf = RandomForestRegressor::new(RandomForestConfig {
        n_estimators: 10,
        seed: 2,
        ..Default::default()
    });
    rf.fit(&data).unwrap();
    let serial = with_pool(1, || {
        ae_ml::importance::permutation_importance(&rf, &data, 6, 9).unwrap()
    });
    let wide = with_pool(8, || {
        ae_ml::importance::permutation_importance(&rf, &data, 6, 9).unwrap()
    });
    assert_eq!(serial.scores, wide.scores);
    assert_eq!(serial.score_stds, wide.score_stds);
}
