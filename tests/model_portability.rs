//! Integration tests of the portable-model path: export, registry
//! persistence, reload in a fresh "process" (new registry instance), and
//! identical scoring behaviour — the property the paper gets from ONNX.

use std::sync::Arc;

use autoexecutor::prelude::*;
use autoexecutor::{AutoExecutorRule, ModelRegistry, Optimizer, ParameterModel};

fn fast_config() -> AutoExecutorConfig {
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = 15;
    config.training_run.noise_cv = 0.0;
    config
}

#[test]
fn exported_model_scores_identically_after_disk_roundtrip() {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training: Vec<_> = (1..=15)
        .map(|i| generator.instance(&format!("q{i}")))
        .collect();
    let config = fast_config();
    let (_, model) = train_from_workload(&training, &config).unwrap();

    let dir = std::env::temp_dir().join(format!("ae_portability_{}", std::process::id()));
    let registry = ModelRegistry::with_directory(&dir).unwrap();
    registry
        .register("persisted", model.to_portable("persisted").unwrap())
        .unwrap();

    // A brand-new registry instance (simulating a fresh optimizer process)
    // loads the model from disk and produces bit-identical predictions.
    let fresh = ModelRegistry::with_directory(&dir).unwrap();
    let reloaded = ParameterModel::from_portable(&fresh.load("persisted").unwrap()).unwrap();
    for name in ["q20", "q40", "q94"] {
        let plan = generator.instance(name).plan;
        let original = model.predict_ppm(&plan).unwrap().parameters();
        let roundtripped = reloaded.predict_ppm(&plan).unwrap().parameters();
        assert_eq!(original, roundtripped, "{name} predictions diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn both_ppm_families_survive_portability_and_drive_the_rule() {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training: Vec<_> = (20..=40)
        .map(|i| generator.instance(&format!("q{i}")))
        .collect();

    for kind in [PpmKind::PowerLaw, PpmKind::Amdahl] {
        let config = fast_config().with_ppm_kind(kind);
        let (_, model) = train_from_workload(&training, &config).unwrap();
        let registry = Arc::new(ModelRegistry::in_memory());
        registry
            .register("m", model.to_portable("m").unwrap())
            .unwrap();
        let optimizer = Optimizer::with_default_rules().with_rule(Box::new(
            AutoExecutorRule::from_config(registry, "m", &config),
        ));
        let outcome = optimizer.optimize(generator.instance("q94").plan).unwrap();
        let request = outcome.resource_request.unwrap();
        assert!((1..=48).contains(&request.executors), "{kind:?}");
        assert_eq!(request.predicted_ppm.kind(), kind);
    }
}

#[test]
fn model_inference_stays_fast_enough_for_the_query_path() {
    // Section 5.6: per-query inference is ~1 ms and featurization ~10 ms.
    // Generous bounds here (debug builds are slow), but the budget must stay
    // far below query run times.
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training: Vec<_> = (1..=15)
        .map(|i| generator.instance(&format!("q{i}")))
        .collect();
    let config = fast_config();
    let (data, _) = train_from_workload(&training, &config).unwrap();
    let report = autoexecutor::measure_overheads(&training, &data, &config).unwrap();

    assert!(report.inference_per_query.as_millis() < 200, "{report:?}");
    assert!(
        report.featurization_per_query.as_millis() < 100,
        "{report:?}"
    );
    assert!(report.portable_model_bytes > 1_000, "{report:?}");
}
