//! Cross-crate integration: workload generation → engine simulation →
//! Sparklens analysis → PPM fitting → parameter model → evaluation metrics.
//! Each assertion checks a hand-off between two crates.

use std::collections::BTreeMap;

use ae_ppm::fit::{fit_amdahl, fit_power_law};
use autoexecutor::evaluation::{cross_validate, error_by_count, ActualRuns, CrossValidationConfig};
use autoexecutor::prelude::*;
use autoexecutor::TrainingData;

fn fast_config() -> AutoExecutorConfig {
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = 10;
    config.training_run.noise_cv = 0.0;
    config
}

fn workload(names: &[&str], sf: ScaleFactor) -> Vec<ae_workload::QueryInstance> {
    let generator = WorkloadGenerator::new(sf);
    names.iter().map(|n| generator.instance(n)).collect()
}

#[test]
fn sparklens_estimates_feed_ppm_fits_that_track_actuals() {
    // Workload → engine run at n=16 → Sparklens curve → PPM fit; the fitted
    // PPM should approximate the engine's actual behaviour at other counts.
    let queries = workload(&["q8", "q26", "q58", "q94"], ScaleFactor::SF10);
    let cluster = ClusterConfig::paper_default();
    let analyzer = SparklensAnalyzer::paper_default();
    let counts = [1usize, 3, 8, 16, 32, 48];

    for query in &queries {
        let sim = Simulator::new(cluster, AllocationPolicy::static_allocation(16)).unwrap();
        let run = sim.run(
            &query.name,
            &query.dag,
            &RunConfig::deterministic().with_task_log(),
        );
        let log = run.task_log.unwrap();
        let curve = analyzer.estimate_from_log(&log, &counts);
        let pl = fit_power_law(&curve).unwrap();
        let al = fit_amdahl(&curve).unwrap();

        // The fits reproduce the Sparklens curve itself reasonably well.
        for &(n, t) in &curve {
            let rel_pl = (pl.predict(n as f64) - t).abs() / t;
            let rel_al = (al.predict(n as f64) - t).abs() / t;
            assert!(
                rel_pl.min(rel_al) < 0.35,
                "{} at n={n}: PL {:.2} / AL {:.2} vs Sparklens {:.2}",
                query.name,
                pl.predict(n as f64),
                al.predict(n as f64),
                t
            );
        }

        // And the fitted PPM tracks the engine's actual runtime at a count
        // never observed (n = 24), within a loose factor.
        let sim24 = Simulator::new(cluster, AllocationPolicy::static_allocation(24)).unwrap();
        let actual24 = sim24
            .run(&query.name, &query.dag, &RunConfig::deterministic())
            .elapsed_secs;
        let predicted24 = pl.predict(24.0);
        let ratio = predicted24 / actual24;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "{}: predicted {predicted24:.1}s vs actual {actual24:.1}s at n=24",
            query.name
        );
    }
}

#[test]
fn training_data_to_ml_dataset_to_evaluation_metrics() {
    let queries = workload(
        &["q10", "q22", "q35", "q47", "q59", "q71"],
        ScaleFactor::SF10,
    );
    let config = fast_config();
    let data = TrainingData::collect(&queries, &config).unwrap();

    // Dataset hand-off to ae-ml keeps names aligned.
    let dataset = data
        .to_dataset(PpmKind::PowerLaw, autoexecutor::FeatureSet::F0)
        .unwrap();
    assert_eq!(dataset.ids().len(), queries.len());
    assert_eq!(
        dataset.feature_names().len(),
        autoexecutor::full_feature_names().len()
    );

    // Evaluation metrics consume predictions keyed by the same names.
    let actuals = ActualRuns::collect(&queries, &[8, 32], 1, &config.cluster, 5).unwrap();
    let sparklens: BTreeMap<String, Vec<(usize, f64)>> = data
        .examples
        .iter()
        .map(|e| (e.name.clone(), e.sparklens_curve.clone()))
        .collect();
    let errors = error_by_count(&sparklens, &actuals, &[8, 32]);
    assert_eq!(errors.len(), 2);
    for (&n, &e) in &errors {
        assert!((0.0..1.5).contains(&e), "Sparklens E({n}) = {e}");
    }
}

#[test]
fn cross_validation_report_is_structurally_sound() {
    let queries = workload(
        &[
            "q13", "q29", "q38", "q46", "q54", "q63", "q72", "q80", "q94",
        ],
        ScaleFactor::SF10,
    );
    let config = fast_config();
    let data = TrainingData::collect(&queries, &config).unwrap();
    let actuals = ActualRuns::collect(&queries, &[1, 16, 48], 1, &config.cluster, 9).unwrap();
    let report = cross_validate(
        &data,
        &actuals,
        &config,
        &CrossValidationConfig {
            folds: 3,
            repeats: 2,
            seed: 4,
        },
        &[1, 16, 48],
    )
    .unwrap();

    assert_eq!(report.folds.len(), 6);
    // Every query is predicted as a test query exactly once per repeat.
    let curves = report.test_curves_by_query();
    assert_eq!(curves.len(), queries.len());
    for (name, per_repeat) in &curves {
        assert_eq!(
            per_repeat.len(),
            2,
            "{name} should be held out once per repeat"
        );
    }
    // Train error is (usually) no worse than test error on average; allow a
    // modest margin since both are stochastic.
    let train: f64 = report.train_error_summary().values().map(|&(m, _)| m).sum();
    let test: f64 = report.test_error_summary().values().map(|&(m, _)| m).sum();
    assert!(train <= test * 1.5 + 0.2, "train {train} vs test {test}");
}

#[test]
fn scale_factor_changes_flow_through_features_and_predictions() {
    // The same template at SF=10 vs SF=100 must differ in the input-size
    // features and, through them, in the predicted curves.
    let config = fast_config();
    let training = workload(
        &["q1", "q5", "q11", "q21", "q31", "q41", "q51", "q61"],
        ScaleFactor::SF10,
    );
    let (_, model) = autoexecutor::train_from_workload(&training, &config).unwrap();

    let q10 = WorkloadGenerator::new(ScaleFactor::SF10).instance("q94");
    let q100 = WorkloadGenerator::new(ScaleFactor::SF100).instance("q94");
    let f10 = autoexecutor::featurize_plan(&q10.plan);
    let f100 = autoexecutor::featurize_plan(&q100.plan);
    assert_ne!(f10, f100);

    let c10 = model.predict_curve(&q10.plan, &[8]).unwrap()[0].1;
    let c100 = model.predict_curve(&q100.plan, &[8]).unwrap()[0].1;
    assert!(
        c100 >= c10,
        "larger inputs should not predict faster runs: SF10 {c10:.1}s vs SF100 {c100:.1}s"
    );
}
