//! Regression suite pinning [`CompiledForest`] predictions against the
//! interpreted [`RandomForestRegressor::predict`] across all three builtin
//! workload families.
//!
//! The compiled representation (flat SoA tree arenas, pooled leaf table,
//! batch-major kernel) is what every scoring path — the sequential
//! `AutoExecutorRule`, the `ScoringRuntime` micro-batches, CV/evaluation,
//! and the QoS price quotes — now runs on, so it must be **bit-identical**
//! to the interpreter, not approximately equal: serving determinism
//! (`crates/serve/tests/determinism.rs`) is pinned against the sequential
//! rule, and both sides of that pin now traverse compiled arenas.
//!
//! [`CompiledForest`]: ae_ml::compiled::CompiledForest
//! [`RandomForestRegressor::predict`]: ae_ml::forest::RandomForestRegressor::predict

use ae_ml::matrix::FeatureMatrix;
use ae_workload::{BuiltinFamily, ScaleFactor, WorkloadGenerator};
use autoexecutor::featurize_plan;
use autoexecutor::training::{train_from_workload, ParameterModel};
use autoexecutor::AutoExecutorConfig;

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn fast_config() -> AutoExecutorConfig {
    let mut cfg = AutoExecutorConfig::default();
    cfg.forest.n_estimators = 10;
    cfg.training_run.noise_cv = 0.0;
    cfg
}

/// Trains a model on a few of the family's queries and asserts that the
/// compiled forest reproduces the interpreted forest bit-for-bit over the
/// *whole* suite, on the single-row path, the batch-major kernel, and the
/// `predict_ppm` wrappers.
fn assert_family_pinned(family: BuiltinFamily, train_names: &[&str]) {
    let generator = WorkloadGenerator::builtin(family, ScaleFactor::SF10);
    let train: Vec<_> = train_names
        .iter()
        .map(|name| generator.instance(name))
        .collect();
    let config = fast_config();
    let (_, model) = train_from_workload(&train, &config).expect("training");
    let compiled = model.compiled();
    let forest = model.forest();
    assert_eq!(compiled.num_trees(), forest.num_trees());
    assert_eq!(compiled.num_nodes(), forest.total_nodes());

    let suite = generator.suite();
    let k = compiled.num_outputs();
    let mut projected = FeatureMatrix::with_capacity(compiled.num_features(), suite.len());
    for query in &suite {
        let full = featurize_plan(&query.plan);
        let row = model.feature_set().project(&full);

        // Single-row: compiled vs interpreted, bit for bit.
        let interpreted = forest.predict(&row).expect("interpreted predict");
        let fast = compiled.predict(&row).expect("compiled predict");
        assert_eq!(
            bits(&interpreted),
            bits(&fast),
            "{family:?}/{} diverged on the single-row path",
            query.name
        );

        // The PPM wrapper (what the optimizer rule and serving score with)
        // must carry the same parameters.
        let ppm = model
            .predict_ppm_from_full_features(&full)
            .expect("predict_ppm");
        assert_eq!(
            bits(&ppm.parameters()),
            bits(&ae_ppm::Ppm::from_parameters(model.kind(), &interpreted).parameters()),
            "{family:?}/{} diverged through the PPM wrapper",
            query.name
        );

        projected.push_row(&row).expect("projected row");
    }

    // Batch-major kernel over the whole suite at once.
    let mut flat = vec![0.0; suite.len() * k];
    compiled
        .predict_batch_into(&projected, &mut flat)
        .expect("batch kernel");
    for (i, query) in suite.iter().enumerate() {
        let interpreted = forest.predict(projected.row(i)).expect("interpreted");
        assert_eq!(
            bits(&interpreted),
            bits(&flat[i * k..(i + 1) * k]),
            "{family:?}/{} diverged on the batch kernel",
            query.name
        );
    }

    // And the batched PPM path equals the single-row PPM path.
    let mut full_matrix = FeatureMatrix::with_capacity(
        autoexecutor::features::full_feature_names().len(),
        suite.len(),
    );
    for query in &suite {
        full_matrix.push_row(&featurize_plan(&query.plan)).unwrap();
    }
    let batched = model.predict_ppm_batch(&full_matrix).expect("ppm batch");
    assert_eq!(batched.len(), suite.len());
    for (query, ppm) in suite.iter().zip(&batched) {
        let single = model
            .predict_ppm(&query.plan)
            .expect("single ppm prediction");
        assert_eq!(
            bits(&single.parameters()),
            bits(&ppm.parameters()),
            "{family:?}/{} diverged between batched and single PPM prediction",
            query.name
        );
    }
}

#[test]
fn tpcds_compiled_predictions_are_pinned_to_the_interpreter() {
    assert_family_pinned(
        BuiltinFamily::Tpcds,
        &["q3", "q19", "q55", "q68", "q79", "q94"],
    );
}

#[test]
fn tpch_compiled_predictions_are_pinned_to_the_interpreter() {
    assert_family_pinned(BuiltinFamily::Tpch, &["h1", "h4", "h9", "h17", "h21"]);
}

#[test]
fn skew_compiled_predictions_are_pinned_to_the_interpreter() {
    let generator = WorkloadGenerator::builtin(BuiltinFamily::Skew, ScaleFactor::SF10);
    let names: Vec<String> = generator
        .suite()
        .into_iter()
        .take(6)
        .map(|q| q.name)
        .collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    assert_family_pinned(BuiltinFamily::Skew, &refs);
}

#[test]
fn portable_roundtrip_preserves_the_compiled_pin() {
    // Deserialization recompiles: a model that went through bytes must
    // score bit-identically to the in-memory original.
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let train: Vec<_> = ["q1", "q5", "q12", "q42"]
        .iter()
        .map(|name| generator.instance(name))
        .collect();
    let (_, model) = train_from_workload(&train, &fast_config()).expect("training");
    let bytes = model
        .to_portable("pin-roundtrip")
        .expect("to_portable")
        .to_bytes()
        .expect("serialize");
    let restored = ParameterModel::from_portable(
        &ae_ml::portable::PortableModel::from_bytes(&bytes).expect("deserialize"),
    )
    .expect("from_portable");
    for name in ["q3", "q55", "q94"] {
        let plan = generator.instance(name).plan;
        let original = model.predict_ppm(&plan).expect("original");
        let roundtripped = restored.predict_ppm(&plan).expect("roundtripped");
        assert_eq!(
            bits(&original.parameters()),
            bits(&roundtripped.parameters()),
            "{name} diverged across the portable roundtrip"
        );
    }
}
