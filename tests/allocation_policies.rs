//! Integration tests of the allocation policies across the workload and
//! engine crates: the cost-saving structure of Section 5.4 must hold on the
//! simulated cluster.

use autoexecutor::prelude::*;
use autoexecutor::{compare_allocations, ratio_averages};

#[test]
fn rule_saves_occupancy_versus_static_and_dynamic_on_long_queries() {
    // SF=100 queries run long enough for the allocation ramp to complete, so
    // the comparison is apples-to-apples (the ◆-marked queries of Figure 13).
    let generator = WorkloadGenerator::new(ScaleFactor::SF100);
    let cluster = ClusterConfig::paper_default();
    let mut comparisons = Vec::new();
    for name in ["q94", "q23", "q50", "q78"] {
        let query = generator.instance(name);
        // A mid-range prediction similar to what AE_PL selects at H=1.05.
        let predicted = 16;
        comparisons.push(
            compare_allocations(
                &cluster,
                name,
                &query.dag,
                predicted,
                48,
                &RunConfig::deterministic(),
            )
            .unwrap(),
        );
    }
    let averages = ratio_averages(&comparisons);

    // Peak executors: SA(48) and DA allocate at least as many as the rule.
    assert!(averages.n_ratio_static >= 1.0, "{averages:?}");
    assert!(averages.n_ratio_dynamic >= 1.0, "{averages:?}");
    // Occupancy: the rule saves a substantial fraction vs SA(48), and does
    // not cost more than DA overall.
    assert!(averages.auc_saving_vs_static > 0.3, "{averages:?}");
    assert!(averages.auc_saving_vs_dynamic > -0.1, "{averages:?}");
    // Performance: the rule's slowdown vs SA(48) stays modest.
    assert!(averages.speedup_vs_static > 0.6, "{averages:?}");
    // Long queries reach their full predicted allocation.
    assert!(averages.fully_allocated_fraction > 0.9, "{averages:?}");
}

#[test]
fn dynamic_allocation_overshoots_relative_to_a_good_prediction() {
    // DA ramps exponentially on backlog, so for a wide scan it allocates
    // more peak executors than a well-chosen prediction needs.
    let generator = WorkloadGenerator::new(ScaleFactor::SF100);
    let query = generator.instance("q88");
    let cluster = ClusterConfig::paper_default();
    let comparison = compare_allocations(
        &cluster,
        "q88",
        &query.dag,
        12,
        48,
        &RunConfig::deterministic(),
    )
    .unwrap();
    assert!(
        comparison.dynamic.max_executors >= comparison.rule.max_executors,
        "DA peak {} vs rule peak {}",
        comparison.dynamic.max_executors,
        comparison.rule.max_executors
    );
}

#[test]
fn static_allocation_is_fastest_but_most_expensive() {
    let generator = WorkloadGenerator::new(ScaleFactor::SF100);
    let query = generator.instance("q94");
    let cluster = ClusterConfig::paper_default();
    let comparison = compare_allocations(
        &cluster,
        "q94",
        &query.dag,
        10,
        48,
        &RunConfig::deterministic(),
    )
    .unwrap();
    // SA(48) is at least as fast as the rule (it never waits for the rule's
    // request), but consumes more executor-seconds.
    assert!(comparison.static_max.elapsed_secs <= comparison.rule.elapsed_secs + 1.0);
    assert!(comparison.static_max.auc_executor_secs > comparison.rule.auc_executor_secs);
}

#[test]
fn session_reuses_executors_between_back_to_back_queries() {
    use ae_engine::session::{ApplicationSession, QuerySubmission};
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let cluster = ClusterConfig::paper_default();
    let session = ApplicationSession::new(cluster, 60.0, RunConfig::deterministic()).unwrap();
    let submissions: Vec<QuerySubmission> = ["q15", "q16"]
        .iter()
        .map(|name| QuerySubmission {
            name: name.to_string(),
            dag: generator.instance(name).dag,
            predicted_executors: Some(10),
            gap_before_secs: 5.0, // short think time, below the idle timeout
        })
        .collect();
    let result = session.run(&submissions).unwrap();
    // During the short gap executors are retained, so the skyline never
    // drops to zero between the queries.
    let gap_time = result.queries[1].submitted_at_secs - 2.0;
    assert!(result.skyline.value_at(gap_time) > 0);
}
