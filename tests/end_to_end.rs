//! End-to-end integration test: the full AutoExecutor loop on a held-out
//! query — train, publish, optimize, execute, and verify the cost/accuracy
//! claims hold qualitatively on the simulated cluster.

use std::sync::Arc;

use autoexecutor::prelude::*;
use autoexecutor::{compare_allocations, AutoExecutorRule, ModelRegistry, Optimizer};

fn fast_config() -> AutoExecutorConfig {
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = 20;
    config.training_run.noise_cv = 0.0;
    config
}

#[test]
fn train_publish_optimize_execute() {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    // Train on 20 queries; hold out q94 entirely.
    let training: Vec<_> = (1..=20)
        .map(|i| generator.instance(&format!("q{i}")))
        .collect();
    let config = fast_config();
    let (data, model) = train_from_workload(&training, &config).unwrap();
    assert_eq!(data.len(), 20);

    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("e2e", model.to_portable("e2e").unwrap())
        .unwrap();
    let optimizer = Optimizer::with_default_rules().with_rule(Box::new(
        AutoExecutorRule::from_config(Arc::clone(&registry), "e2e", &config),
    ));

    // Optimize the held-out query.
    let held_out = generator.instance("q94");
    let outcome = optimizer.optimize(held_out.plan.clone()).unwrap();
    let request = outcome.resource_request.expect("rule produced a request");
    assert!((1..=48).contains(&request.executors));
    // The predicted curve is monotone non-increasing (PPM monotonicity).
    for pair in request.predicted_curve.windows(2) {
        assert!(pair[1].1 <= pair[0].1 + 1e-9);
    }

    // Execute under the three allocation policies and check the cost
    // structure the paper reports: the rule never allocates more peak
    // executors than SA(48) and uses less executor occupancy.
    let comparison = compare_allocations(
        &config.cluster,
        "q94",
        &held_out.dag,
        request.executors,
        48,
        &RunConfig::deterministic(),
    )
    .unwrap();
    assert!(comparison.rule.max_executors <= comparison.static_max.max_executors);
    assert!(comparison.rule.auc_executor_secs < comparison.static_max.auc_executor_secs);
    // The rule pays at most a modest slowdown relative to SA(48).
    assert!(comparison.speedup_vs_static() > 0.5);
}

#[test]
fn predictions_are_in_the_right_ballpark_for_unseen_queries() {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training: Vec<_> = (1..=30)
        .map(|i| generator.instance(&format!("q{i}")))
        .collect();
    let config = fast_config();
    let (_, model) = train_from_workload(&training, &config).unwrap();

    // Measure a few unseen queries at n=16 and compare with the prediction.
    let unseen = ["q40", "q50", "q60"];
    for name in unseen {
        let query = generator.instance(name);
        let sim = Simulator::new(config.cluster, AllocationPolicy::static_allocation(16)).unwrap();
        let actual = sim
            .run(name, &query.dag, &RunConfig::deterministic())
            .elapsed_secs;
        let predicted = model
            .predict_curve(&query.plan, &[16])
            .unwrap()
            .first()
            .map(|&(_, t)| t)
            .unwrap();
        let ratio = predicted / actual;
        assert!(
            (0.2..=5.0).contains(&ratio),
            "{name}: predicted {predicted:.1}s vs actual {actual:.1}s"
        );
    }
}

#[test]
fn elbow_objective_selects_moderate_executor_counts() {
    // The paper finds elbow points concentrated around 8 executors
    // (Figure 11); the reproduction should land in the same small-n region
    // rather than at the extremes.
    let generator = WorkloadGenerator::new(ScaleFactor::SF100);
    let training: Vec<_> = (1..=25)
        .map(|i| generator.instance(&format!("q{i}")))
        .collect();
    let config = fast_config().with_objective(SelectionObjective::Elbow);
    let (_, model) = train_from_workload(&training, &config).unwrap();

    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("elbow", model.to_portable("elbow").unwrap())
        .unwrap();
    let optimizer = Optimizer::with_default_rules().with_rule(Box::new(
        AutoExecutorRule::from_config(registry, "elbow", &config),
    ));

    let mut selections = Vec::new();
    for name in ["q30", "q45", "q70", "q94"] {
        let outcome = optimizer.optimize(generator.instance(name).plan).unwrap();
        selections.push(outcome.resource_request.unwrap().executors);
    }
    let mean = selections.iter().sum::<usize>() as f64 / selections.len() as f64;
    assert!(
        (2.0..=24.0).contains(&mean),
        "mean elbow selection {mean} outside the expected knee region ({selections:?})"
    );
}
