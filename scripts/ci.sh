#!/usr/bin/env bash
# CI gate for the AutoExecutor workspace.
#
# Runs the tier-1 verification (release build + tests), lint/format gates
# over every workspace crate (including ae-serve), a rustdoc gate (no-deps
# docs must build with zero warnings), a quick criterion smoke over the two
# benches most sensitive to scheduler/training regressions, a serving smoke
# (short fixed-duration bench_serving run that must sustain qps > 0 with
# zero dropped requests), an inference smoke (compiled-forest output must
# be bit-identical to the interpreted forest and its batched throughput at
# least the interpreted baseline's), a QoS smoke (tagged open-loop phases: finite
# miss/shed rates, the Interactive deadline budget holding at moderate
# load, Interactive p99 < BestEffort p99 under overload, and no tenant
# starvation), a cross-family
# generalization smoke (train on the TPC-DS-like family, score the
# TPC-H-like and skew-adversarial ones, assert the accuracy matrix is
# complete and finite), and a fault smoke (zero-fault injection is
# bit-identical to the fault-unaware scheduler, >= 99% of queries complete
# via retry at moderate preemption, and the serving circuit breaker trips
# to the heuristic fallback and recovers), and an observability smoke
# (serving-trace render/parse roundtrip bit-identical, capture→replay
# determinism gate reports zero mismatches, and the measured overhead of
# attaching metrics + event tracing to the runtime stays under the smoke
# bound), and a fleet smoke (sharded serving under the shard-=-node
# measurement model: 4-shard aggregate qps at least 2x single-shard,
# finite per-shard p99 skew, zero dropped/errored requests, and a live
# work-steal drill), and a resilience smoke (one full shard failure
# lifecycle per fleet size: zero lost tickets, surviving goodput >= 60%
# of pre-kill through a 1-of-4 shard crash, and probationary recovery
# re-admitting the revived shard). Pass --full to also run the full
# bench suite (slow).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --quiet

echo "==> bench smoke (quick samples)"
cargo bench --offline -p ae-bench --bench bench_simulation -- --quick
cargo bench --offline -p ae-bench --bench bench_training -- --quick forest_fit

echo "==> inference smoke (compiled forest ≡ interpreter bit-for-bit; compiled batched throughput >= interpreted)"
cargo run --offline --release -p ae-bench --bin bench_inference -- --smoke

echo "==> serving smoke (fixed-duration run; asserts qps > 0, zero dropped)"
cargo run --offline --release -p ae-bench --bin bench_serving -- --smoke

echo "==> qos smoke (moderate + overload phases; asserts finite rates, Interactive budget holds at moderate load, Interactive p99 < BestEffort p99 under overload, no tenant starvation)"
cargo run --offline --release -p ae-bench --bin bench_qos -- --smoke

echo "==> generalization smoke (train tpcds, score tpch + skew; asserts a full finite matrix)"
cargo run --offline --release -p ae-bench --bin bench_generalization -- --smoke --json "$(mktemp -t generalization-smoke.XXXXXX.json)"

echo "==> fault smoke (zero-fault pin bit-identical, >= 99% completion via retry at moderate preemption, breaker trips to the heuristic fallback and recovers)"
cargo run --offline --release -p ae-bench --bin bench_faults -- --smoke --json "$(mktemp -t faults-smoke.XXXXXX.json)"

echo "==> obs smoke (trace roundtrip bit-identical, capture→replay determinism gate clean, obs overhead under bound)"
cargo run --offline --release -p ae-bench --bin bench_obs -- --smoke --json "$(mktemp -t obs-smoke.XXXXXX.json)"

echo "==> fleet smoke (4-shard aggregate qps >= 2x single-shard, finite per-shard p99 skew, zero dropped/errors)"
cargo run --offline --release -p ae-bench --bin bench_fleet -- --smoke

echo "==> resilience smoke (1-of-4 shard kill: zero lost tickets, >= 60% goodput retained, probation re-admits)"
cargo run --offline --release -p ae-bench --bin bench_resilience -- --smoke

if [[ "${1:-}" == "--full" ]]; then
    echo "==> full bench suite"
    cargo bench --offline -p ae-bench
fi

echo "CI OK"
