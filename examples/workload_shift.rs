//! Handling input-data growth (Section 5.5): train the parameter model at
//! one scale factor and predict at another. Because the model consumes
//! compile-time input-size estimates, predictions follow the data size even
//! though the queries were never run at the new scale.
//!
//! Run with:
//! ```text
//! cargo run --release -p autoexecutor --example workload_shift
//! ```

use std::collections::BTreeMap;

use autoexecutor::evaluation::{error_by_count, ActualRuns};
use autoexecutor::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let names = [
        "q4", "q12", "q20", "q28", "q36", "q44", "q52", "q60", "q69", "q77", "q85", "q93", "q94",
        "q14b", "q24b",
    ];
    let config = AutoExecutorConfig::default();

    // Train at SF=10.
    let train_generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let train_queries: Vec<_> = names.iter().map(|n| train_generator.instance(n)).collect();
    let (_, model) = train_from_workload(&train_queries, &config)?;
    println!(
        "trained at {} on {} queries",
        ScaleFactor::SF10,
        train_queries.len()
    );

    // Test at SF=100: same templates, 10x the input data.
    let test_generator = WorkloadGenerator::new(ScaleFactor::SF100);
    let test_queries: Vec<_> = names.iter().map(|n| test_generator.instance(n)).collect();
    let counts = config.training_counts;
    let actuals = ActualRuns::collect(&test_queries, &counts, 1, &config.cluster, 11)?;

    let predictions: BTreeMap<String, Vec<(usize, f64)>> = test_queries
        .iter()
        .map(|q| {
            let curve = model
                .predict_curve(&q.plan, &counts)
                .expect("prediction succeeds");
            (q.name.clone(), curve)
        })
        .collect();

    // Also compare against a naive baseline that ignores the data-size
    // change: predictions made from the SF=10 plans.
    let stale_predictions: BTreeMap<String, Vec<(usize, f64)>> = train_queries
        .iter()
        .map(|q| {
            let curve = model
                .predict_curve(&q.plan, &counts)
                .expect("prediction succeeds");
            (q.name.clone(), curve)
        })
        .collect();

    let fresh = error_by_count(&predictions, &actuals, &counts);
    let stale = error_by_count(&stale_predictions, &actuals, &counts);

    println!("\nE(n) on SF=100 test queries (trained at SF=10):");
    println!(
        "{:>6} {:>22} {:>26}",
        "n", "size-aware prediction", "stale (SF=10 features)"
    );
    for &n in &counts {
        println!(
            "{:>6} {:>22.3} {:>26.3}",
            n,
            fresh.get(&n).copied().unwrap_or(f64::NAN),
            stale.get(&n).copied().unwrap_or(f64::NAN)
        );
    }

    // Show one query in detail: predicted vs actual as data grows.
    let example = "q94";
    println!("\n{example}: predicted vs actual at SF=100");
    let predicted = &predictions[example];
    let actual = actuals.curve(example).expect("q94 measured");
    println!("{:>6} {:>14} {:>12}", "n", "predicted (s)", "actual (s)");
    for (&(n, p), &(_, a)) in predicted.iter().zip(actual) {
        println!("{:>6} {:>14.1} {:>12.1}", n, p, a);
    }
    println!(
        "\nthe size-aware predictions track the larger data volume because the\n\
         model's dominant features are the estimated input bytes and rows\n\
         (Figure 15), which the optimizer updates from catalog statistics."
    );
    Ok(())
}
