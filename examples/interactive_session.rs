//! Interactive-session example (Figure 7 of the paper): an application that
//! submits several queries with think-time gaps. AutoExecutor predicts each
//! query's executor count up front and the modified dynamic allocation
//! releases idle executors during the gaps.
//!
//! Run with:
//! ```text
//! cargo run --release -p autoexecutor --example interactive_session
//! ```

use std::sync::Arc;

use ae_engine::session::{ApplicationSession, QuerySubmission};
use autoexecutor::prelude::*;
use autoexecutor::{AutoExecutorRule, ModelRegistry, Optimizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = WorkloadGenerator::new(ScaleFactor::SF100);

    // Train on a broad slice of the suite so the notebook queries are unseen.
    let training_queries: Vec<_> = (1..=40)
        .map(|i| generator.instance(&format!("q{i}")))
        .collect();
    let config = AutoExecutorConfig::default();
    let (_, model) = train_from_workload(&training_queries, &config)?;

    let registry = Arc::new(ModelRegistry::in_memory());
    registry.register("notebook", model.to_portable("notebook")?)?;
    let optimizer = Optimizer::with_default_rules().with_rule(Box::new(
        AutoExecutorRule::from_config(registry, "notebook", &config),
    ));

    // The interactive notebook: four unseen queries with gaps in between.
    let notebook = ["q94", "q69", "q81", "q96"];
    let gaps = [0.0, 45.0, 120.0, 30.0];
    let mut submissions = Vec::new();
    println!("{:<8} {:>18}", "query", "predicted executors");
    for (name, gap) in notebook.iter().zip(gaps) {
        let query = generator.instance(name);
        let outcome = optimizer.optimize(query.plan.clone())?;
        let predicted = outcome.resource_request.map(|r| r.executors);
        println!(
            "{:<8} {:>18}",
            name,
            predicted.map(|n| n.to_string()).unwrap_or_default()
        );
        submissions.push(QuerySubmission {
            name: name.to_string(),
            dag: query.dag,
            predicted_executors: predicted,
            gap_before_secs: gap,
        });
    }

    // Replay the session: predictive allocation per query, reactive
    // deallocation (60 s idle timeout) between queries.
    let session = ApplicationSession::new(config.cluster, 60.0, RunConfig::default())?;
    let result = session.run(&submissions)?;

    println!("\nper-query outcomes:");
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>16}",
        "query", "submitted", "elapsed", "max execs", "occupancy (e*s)"
    );
    for outcome in &result.queries {
        println!(
            "{:<8} {:>11.0}s {:>9.1}s {:>12} {:>16.0}",
            outcome.name,
            outcome.submitted_at_secs,
            outcome.elapsed_secs,
            outcome.max_executors,
            outcome.auc_executor_secs
        );
    }
    println!(
        "\napplication lifetime: {:.0}s, total occupancy {:.0} executor-seconds",
        result.total_elapsed_secs, result.total_auc_executor_secs
    );

    // The combined skyline, sampled coarsely, shows allocation rising for
    // each query and draining during gaps (the shape of Figure 7).
    println!("\nexecutor skyline (one sample per 30 s):");
    for (t, n) in result.skyline.sample(30.0) {
        println!(
            "  t={:>6.0}s  executors={:<3} {}",
            t,
            n,
            "#".repeat(n.min(60))
        );
    }
    Ok(())
}
