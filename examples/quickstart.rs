//! Quickstart: train AutoExecutor on a handful of queries, publish the
//! model, and let the optimizer rule pick executor counts for new queries.
//!
//! Run with:
//! ```text
//! cargo run --release -p autoexecutor --example quickstart
//! ```

use std::sync::Arc;

use autoexecutor::prelude::*;
use autoexecutor::{AutoExecutorRule, ModelRegistry, Optimizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A training workload: synthetic TPC-DS-like queries at SF=10.
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training_names = [
        "q1", "q3", "q7", "q11", "q19", "q27", "q34", "q42", "q55", "q68", "q73", "q79", "q88",
        "q94", "q98",
    ];
    let training_queries: Vec<_> = training_names
        .iter()
        .map(|name| generator.instance(name))
        .collect();
    println!(
        "training on {} queries at {}",
        training_queries.len(),
        ScaleFactor::SF10
    );

    // 2. Train the parameter model: each query is run once at n=16, the
    //    run-time curve is extrapolated with the Sparklens-like analyzer, and
    //    a random forest learns plan features -> PPM parameters.
    let config = AutoExecutorConfig::default();
    let (data, model) = train_from_workload(&training_queries, &config)?;
    println!(
        "collected {} training examples; model predicts {} parameters ({})",
        data.len(),
        model.kind().parameter_names().len(),
        model.kind().label()
    );

    // 3. Publish the model to a registry (the ONNX-registry stand-in) and
    //    install the AutoExecutor rule as the last optimizer rule.
    let registry = Arc::new(ModelRegistry::in_memory());
    registry.register("ppm-quickstart", model.to_portable("ppm-quickstart")?)?;
    let optimizer = Optimizer::with_default_rules().with_rule(Box::new(
        AutoExecutorRule::from_config(Arc::clone(&registry), "ppm-quickstart", &config),
    ));

    // 4. Optimize unseen queries: the rule predicts the price-performance
    //    curve and requests the elbow-point executor count.
    println!(
        "\n{:<8} {:>10} {:>14} {:>14}",
        "query", "executors", "t(n) predicted", "t(1) predicted"
    );
    for name in ["q6", "q23", "q51", "q77", "q96"] {
        let query = generator.instance(name);
        let outcome = optimizer.optimize(query.plan)?;
        let request = outcome.resource_request.expect("AutoExecutor rule ran");
        let predicted_at_choice = request
            .predicted_curve
            .iter()
            .find(|&&(n, _)| n == request.executors)
            .map(|&(_, t)| t)
            .unwrap_or(f64::NAN);
        let predicted_at_one = request
            .predicted_curve
            .first()
            .map(|&(_, t)| t)
            .unwrap_or(f64::NAN);
        println!(
            "{:<8} {:>10} {:>13.1}s {:>13.1}s",
            name, request.executors, predicted_at_choice, predicted_at_one
        );

        // 5. Execute with the predicted allocation and report what happened.
        let result = autoexecutor::run_with_policy(
            &config.cluster,
            AllocationPolicy::predictive(request.executors),
            name,
            &query.dag,
            &RunConfig::default(),
        )?;
        println!(
            "         ran in {:.1}s with {} executors (occupancy {:.0} executor-seconds)",
            result.elapsed_secs, result.max_executors, result.auc_executor_secs
        );
    }
    Ok(())
}
