//! Capacity planning with the price-performance model: sweep the slowdown
//! budget `H` and report how many executors (and how much executor
//! occupancy) a workload needs — the Section 5.3 "limited slowdown"
//! objective used as a what-if tool.
//!
//! Run with:
//! ```text
//! cargo run --release -p autoexecutor --example capacity_planning
//! ```

use autoexecutor::evaluation::{selection_impacts, ActualRuns};
use autoexecutor::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = WorkloadGenerator::new(ScaleFactor::SF100);
    let names = [
        "q2", "q9", "q17", "q25", "q33", "q41", "q49", "q57", "q65", "q73", "q81", "q89", "q94",
        "q23b", "q39b",
    ];
    let queries: Vec<_> = names.iter().map(|n| generator.instance(n)).collect();

    // Train the parameter model on the same workload (capacity planning is a
    // fit-time exercise; generalization is evaluated elsewhere).
    let config = AutoExecutorConfig::default();
    let (data, model) = train_from_workload(&queries, &config)?;

    // Ground truth for the comparison: actual (simulated) runs at the
    // training counts, two repeats each.
    let counts = config.training_counts;
    let actuals = ActualRuns::collect(&queries, &counts, 2, &config.cluster, 7)?;

    // Predicted curves for every query.
    let predictions: std::collections::BTreeMap<String, Vec<(usize, f64)>> = queries
        .iter()
        .map(|q| {
            let curve = model
                .predict_curve(&q.plan, &config.candidate_counts())
                .expect("prediction succeeds");
            (q.name.clone(), curve)
        })
        .collect();

    let h_values = [1.0, 1.05, 1.1, 1.2, 1.5, 2.0];
    let impacts = selection_impacts(&predictions, &actuals, &h_values, (1, 48));

    println!(
        "slowdown budget sweep over {} queries ({}):",
        queries.len(),
        ScaleFactor::SF100
    );
    println!(
        "{:>8} {:>20} {:>22}",
        "H", "mean executors", "mean actual slowdown"
    );
    for impact in &impacts {
        println!(
            "{:>8.2} {:>20.1} {:>22.3}",
            impact.target_slowdown, impact.mean_selected_executors, impact.mean_actual_slowdown
        );
    }

    // Translate the H=1.05 choice into a cluster-size recommendation.
    let at_105 = impacts
        .iter()
        .find(|i| (i.target_slowdown - 1.05).abs() < 1e-9)
        .expect("H=1.05 present");
    let executors_per_node = 2.0;
    println!(
        "\nwith a 5% slowdown budget the workload needs ~{:.0} executors per query,\n\
         i.e. a pool of ~{:.0} medium nodes for a single-query-at-a-time notebook.",
        at_105.mean_selected_executors.ceil(),
        (at_105.mean_selected_executors / executors_per_node).ceil()
    );

    // And show the per-query spread of fitted minimum times for context.
    println!("\nper-query fitted PPM floor (AE_PL parameter m):");
    for example in &data.examples {
        println!("  {:<6} m = {:>7.1}s", example.name, example.power_law.m);
    }
    Ok(())
}
