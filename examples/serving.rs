//! Serving-path demo: train a parameter model, publish it to the registry,
//! score an open-loop burst of queries through the concurrent batching
//! runtime (`ae-serve`), then ask for one query's tiered price menu —
//! the QoS layer's service levels quoted off its predicted curve.
//!
//! Run with: `cargo run --release --example serving`

use std::sync::Arc;
use std::time::Instant;

use ae_serve::{RuntimeConfig, ScoreRequest, ScoringRuntime, ServiceLevel};
use ae_workload::OpenLoop;
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

fn main() {
    // 1. Train the parameter model on a small workload.
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training: Vec<_> = ["q1", "q5", "q12", "q42", "q69", "q94", "q23b", "q77"]
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = 25;
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&training, &config).expect("training");

    // 2. Publish it: the registry hands out cheap Arc handles.
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("demo", model.to_portable("demo").expect("export"))
        .expect("register");

    // 3. Spin up the serving runtime and replay a Poisson burst through it
    //    from several client threads.
    let runtime = Arc::new(ScoringRuntime::new(
        Arc::clone(&registry),
        "demo",
        RuntimeConfig::from_auto_executor(&config),
    ));
    runtime.warm().expect("warm-up");

    let suite = generator.suite();
    let schedule = Arc::new(OpenLoop::new(2000.0, 2000, 7).schedule(suite.len()));
    let plans: Arc<Vec<_>> = Arc::new(suite.iter().map(|q| q.plan.clone()).collect());
    let plan_for = |name: &str| {
        suite
            .iter()
            .find(|q| q.name == name)
            .map(|q| q.plan.clone())
            .expect("known suite query")
    };

    const CLIENTS: usize = 4;
    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let runtime = Arc::clone(&runtime);
            let schedule = Arc::clone(&schedule);
            let plans = Arc::clone(&plans);
            std::thread::spawn(move || {
                let mut served = 0usize;
                for arrival in schedule.iter().skip(c).step_by(CLIENTS) {
                    if let Some(wait) = arrival.at.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let request = runtime.score(&plans[arrival.query_index]).expect("scoring");
                    assert!(request.executors >= 1);
                    served += 1;
                }
                served
            })
        })
        .collect();
    let served: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = start.elapsed();

    let stats = runtime.stats();
    println!(
        "served {served} requests in {:.2}s ({:.0} qps sustained)",
        elapsed.as_secs_f64(),
        served as f64 / elapsed.as_secs_f64()
    );
    println!(
        "inline {} / batched {} over {} batches (mean batch {:.2}); dropped {}, errors {}",
        stats.inline_scored,
        stats.batched(),
        stats.batches,
        stats.mean_batch_size(),
        stats.dropped,
        stats.errors
    );

    // 4. The QoS layer: the same runtime quotes tiered promises. Each
    //    service level buys a different point on the query's *predicted*
    //    curve, so the price multiplier is derived, not configured.
    println!("price menu for q42:");
    let menu_plan = plan_for("q42");
    for level in [
        ServiceLevel::Interactive,
        ServiceLevel::Standard,
        ServiceLevel::BestEffort,
    ] {
        let outcome = runtime
            .submit(ScoreRequest::from_plan(&menu_plan).with_level(level))
            .expect("menu scoring");
        let quote = outcome.quote().expect("predicted curve");
        println!(
            "  {:<12} n={:<3} predicted {:>6.1}s  price {:>7.1} executor-seconds ({:.2}x)",
            level.name(),
            quote.executors,
            quote.predicted_seconds,
            quote.price,
            quote.multiplier
        );
    }
}
